"""Fault-tolerant sweep execution, fault injection and the degradation ladder.

The centrepiece test spawns a *real* worker pool and injects real faults --
``os._exit`` worker kills, a hung scenario, a crash with a cross-process
trip budget -- then asserts the sweep completes, quarantines exactly the
faulty scenarios and reproduces the fault-free numbers bit-identically for
every healthy scenario.
"""

import json
import multiprocessing
import os

import pytest

from repro import faults
from repro.api import AnalysisConfig, NoiseAnalysisSession
from repro.api.report import ClusterError, exception_chain
from repro.experiments import figure1_cluster
from repro.resilience import (
    DegradationLog,
    build_ladder,
    is_numerical_failure,
    resilient_analyze,
    screen_report,
)
from repro.scenarios import ScenarioSpace, SweepRunner
from repro.scenarios.runner import reset_worker_sessions
from repro.technology import build_default_library, get_technology

CONFIG = AnalysisConfig(methods=("macromodel",), vccs_grid=5, check_nrc=False, dt=4e-12)


def small_space(corners=("tt", "ff")):
    return ScenarioSpace(
        base=figure1_cluster(length_um=200.0, num_segments=3),
        technology="cmos130",
        corners=corners,
    )


def scenario_ids(space):
    return [scenario.scenario_id for scenario in space.expand()]


# ---------------------------------------------------------------------------
# Fault plans


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.FaultSpec(site="nope", kind="crash")
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultSpec(site="scenario", kind="meltdown")
        with pytest.raises(ValueError, match="not valid at site"):
            faults.FaultSpec(site="metrics", kind="crash")
        with pytest.raises(ValueError, match="hang_seconds"):
            faults.FaultSpec(site="scenario", kind="hang", hang_seconds=0.0)
        with pytest.raises(ValueError, match="max_trips"):
            faults.FaultSpec(site="scenario", kind="error", max_trips=0)
        with pytest.raises(ValueError, match="match pattern"):
            faults.FaultSpec(site="scenario", kind="error", match="")

    def test_matching_is_fnmatch_on_scenario_id(self):
        spec = faults.FaultSpec(site="scenario", kind="error", match="*/ff/*")
        assert spec.matches("scenario", "cluster/cmos130/ff/nom")
        assert not spec.matches("scenario", "cluster/cmos130/tt/nom")
        assert not spec.matches("solve", "cluster/cmos130/ff/nom")

    def test_token_is_stable(self):
        a = faults.FaultSpec(site="scenario", kind="error", match="x*")
        b = faults.FaultSpec(site="scenario", kind="error", match="x*")
        assert a.token() == b.token()
        assert a.token() != faults.FaultSpec(site="solve", kind="singular").token()


class TestFaultPlan:
    def test_error_kind_raises_injected_fault(self):
        plan = faults.FaultPlan([faults.FaultSpec(site="scenario", kind="error")])
        with pytest.raises(faults.InjectedFault):
            plan.fire("scenario", "anything")

    def test_caller_interpreted_kinds_are_returned(self):
        plan = faults.FaultPlan(
            [
                faults.FaultSpec(site="solve", kind="singular", match="a*"),
                faults.FaultSpec(site="metrics", kind="nan"),
            ]
        )
        assert plan.fire("solve", "a1") == "singular"
        assert plan.fire("solve", "b1") is None
        assert plan.fire("metrics", "a1") == "nan"

    def test_local_trip_budget(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec(site="solve", kind="singular", max_trips=2)]
        )
        assert plan.fire("solve", "s") == "singular"
        assert plan.fire("solve", "s") == "singular"
        assert plan.fire("solve", "s") is None

    def test_ledger_trip_budget_is_shared(self, tmp_path):
        # Two plan instances with one ledger stand in for two worker
        # processes: the budget must hold across both.
        payload = {
            "ledger_dir": str(tmp_path / "ledger"),
            "faults": [
                {"site": "solve", "kind": "singular", "max_trips": 2},
            ],
        }
        plan_a = faults.FaultPlan.from_dict(payload)
        plan_b = faults.FaultPlan.from_dict(payload)
        assert plan_a.fire("solve", "s") == "singular"
        assert plan_b.fire("solve", "s") == "singular"
        assert plan_a.fire("solve", "s") is None
        assert plan_b.fire("solve", "s") is None

    def test_json_round_trip(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec(site="scenario", kind="hang", hang_seconds=5.0)],
            ledger_dir=None,
        )
        clone = faults.FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert clone.to_dict() == plan.to_dict()

    def test_from_env_inline_and_file(self, tmp_path, monkeypatch):
        payload = json.dumps(
            {"faults": [{"site": "metrics", "kind": "nan", "match": "x"}]}
        )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, payload)
        plan = faults.FaultPlan.from_env()
        assert plan is not None and plan.faults[0].kind == "nan"

        path = tmp_path / "plan.json"
        path.write_text(payload)
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(path))
        plan = faults.FaultPlan.from_env()
        assert plan is not None and plan.faults[0].match == "x"

        monkeypatch.delenv(faults.FAULT_PLAN_ENV)
        assert faults.FaultPlan.from_env() is None

    def test_plan_active_restores_previous_state(self):
        plan = faults.FaultPlan([faults.FaultSpec(site="metrics", kind="nan")])
        faults.clear_plan()
        with faults.plan_active(plan):
            assert faults.fire("metrics", "s") == "nan"
        faults.install_plan(None)
        assert faults.fire("metrics", "s") is None
        faults.clear_plan()

    def test_scenario_context_feeds_deep_sites(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec(site="solve", kind="singular", match="deep/*")]
        )
        with faults.plan_active(plan):
            assert faults.fire("solve") is None
            with faults.scenario_context("deep/one"):
                assert faults.current_scenario() == "deep/one"
                assert faults.fire("solve") == "singular"
            assert faults.current_scenario() == ""


# ---------------------------------------------------------------------------
# Exception chains


class TestExceptionChains:
    def _chained(self):
        try:
            try:
                raise ValueError("inner detail")
            except ValueError as inner:
                raise RuntimeError("outer failure") from inner
        except RuntimeError as outer:
            return outer

    def test_exception_chain_outermost_first(self):
        chain = exception_chain(self._chained())
        assert chain == ("RuntimeError: outer failure", "ValueError: inner detail")

    def test_cluster_error_from_exception(self):
        exc = self._chained()
        error = ClusterError.from_exception(exc)
        assert error.exception_type == "RuntimeError"
        assert error.message == "outer failure"
        assert error.cause_chain == exception_chain(exc)

    def test_is_numerical_failure_walks_the_chain(self):
        from repro.circuit.mna import SingularMatrixError

        try:
            try:
                raise SingularMatrixError("singular")
            except SingularMatrixError as inner:
                raise RuntimeError("wrapped") from inner
        except RuntimeError as outer:
            assert is_numerical_failure(outer)
        assert not is_numerical_failure(KeyError("nope"))


# ---------------------------------------------------------------------------
# Degradation ladder


class TestLadder:
    def test_build_ladder_rungs(self):
        rungs = build_ladder(CONFIG)
        assert [name for name, _ in rungs] == ["primary", "sparse", "dense"]
        assert rungs[1][1].solver_backend == "sparse"
        assert rungs[2][1].solver_backend == "dense"

    def test_build_ladder_dedups_collapsed_rungs(self):
        dense_config = CONFIG.replace(solver_backend="dense")
        rungs = build_ladder(dense_config)
        assert [name for name, _ in rungs] == ["primary", "sparse"]

    def test_build_ladder_disables_reduction_on_fallback_rungs(self):
        config = CONFIG.replace(methods=("reduced",))
        rungs = dict(build_ladder(config))
        assert rungs["sparse"].reduction_threshold >= 10**9
        assert rungs["dense"].reduction_threshold >= 10**9
        # Result keys (the method list) survive the fallback.
        assert rungs["sparse"].methods == ("reduced",)

    def test_screen_report_triggers(self):
        from types import SimpleNamespace

        def result(peak, area=1.0, width=1.0, stability=None):
            return SimpleNamespace(
                peak=peak,
                area_v_ps=area,
                width_ps=width,
                details={"stability": stability},
            )

        ok = SimpleNamespace(results={"m": result(0.3)})
        assert screen_report(ok) is None

        nan = SimpleNamespace(results={"m": result(float("nan"))})
        assert "non-finite" in screen_report(nan)

        unstable = SimpleNamespace(
            results={
                "m": result(
                    0.3,
                    stability=SimpleNamespace(
                        passive=False, stable=True, summary=lambda: "not passive"
                    ),
                )
            }
        )
        assert "failed" in screen_report(unstable)

        split = SimpleNamespace(results={"a": result(0.5), "b": result(0.1)})
        assert "disagree" in screen_report(split)
        assert screen_report(split, max_relative_spread=2.0) is None

        tiny = SimpleNamespace(results={"a": result(4e-7), "b": result(1e-8)})
        assert screen_report(tiny) is None

    def test_resilient_analyze_recovers_from_singular_primary(self):
        session = NoiseAnalysisSession(
            build_default_library(get_technology("cmos130")), CONFIG
        )
        spec = figure1_cluster(length_um=200.0, num_segments=3)
        baseline = session.analyze(spec)  # also warms the characterizer

        # One injected dense-singular trip: the primary rung dies on it, the
        # budget is then spent, and the next rung reproduces the baseline.
        plan = faults.FaultPlan(
            [faults.FaultSpec(site="solve", kind="singular", max_trips=1)]
        )
        with faults.plan_active(plan), faults.scenario_context("ladder"):
            report, log = resilient_analyze(session, spec)

        assert isinstance(log, DegradationLog)
        assert log.degraded
        assert log.accepted_rung == "sparse"
        assert any("SingularMatrixError" in event for event in report.degradation)
        assert report.results["macromodel"].peak == baseline.results["macromodel"].peak

    def test_resilient_analyze_reraises_non_numerical(self, monkeypatch):
        session = NoiseAnalysisSession(
            build_default_library(get_technology("cmos130")), CONFIG
        )
        spec = figure1_cluster(length_um=200.0, num_segments=3)

        def explode(self, *args, **kwargs):
            raise KeyError("not a numerical failure")

        monkeypatch.setattr(NoiseAnalysisSession, "analyze", explode)
        # A non-numerical failure must not be papered over by lower rungs.
        with pytest.raises(KeyError):
            resilient_analyze(session, spec)


# ---------------------------------------------------------------------------
# Runner knobs


class TestRunnerKnobs:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            SweepRunner(CONFIG, max_retries=-1)
        with pytest.raises(ValueError, match="shard_timeout_s"):
            SweepRunner(CONFIG, shard_timeout_s=0.0)
        with pytest.raises(ValueError, match="retry_backoff_s"):
            SweepRunner(CONFIG, retry_backoff_s=-0.1)
        with pytest.raises(ValueError, match="max_tasks_per_child"):
            SweepRunner(CONFIG, max_tasks_per_child=0)

    def test_defaults(self):
        runner = SweepRunner(CONFIG)
        assert runner.max_retries == 2
        assert runner.shard_timeout_s is None
        assert runner.retry_backoff_s == 0.5
        assert runner.max_tasks_per_child is None


# ---------------------------------------------------------------------------
# Serial sweeps under injected numerical faults


class TestSerialFaults:
    def test_nan_metrics_become_structured_errors(self):
        space = small_space()
        ids = scenario_ids(space)
        plan = faults.FaultPlan(
            [faults.FaultSpec(site="metrics", kind="nan", match=ids[0])]
        )
        with faults.plan_active(plan):
            report = SweepRunner(CONFIG).run(space)

        poisoned = report.result(ids[0])
        assert not poisoned.ok
        assert poisoned.error.startswith("NonFiniteMetrics")
        assert poisoned.peaks == {}  # never reaches worst_case()
        assert report.result(ids[1]).ok
        assert report.health.nonfinite_scenarios == [ids[0]]
        # worst_case() only sees the healthy scenario.
        assert report.worst_case().scenario_id == ids[1]

    def test_injected_error_is_captured_with_chain(self):
        space = small_space()
        ids = scenario_ids(space)
        plan = faults.FaultPlan(
            [faults.FaultSpec(site="scenario", kind="error", match=ids[0])]
        )
        with faults.plan_active(plan):
            report = SweepRunner(CONFIG).run(space)

        failed = report.result(ids[0])
        assert not failed.ok
        assert "InjectedFault" in failed.error
        assert failed.error_chain and "InjectedFault" in failed.error_chain[0]
        assert failed.session_key
        assert failed.traceback_text
        assert report.result(ids[1]).ok

    def test_degradation_ladder_engages_in_sweep(self):
        space = small_space(corners=("tt",))
        ids = scenario_ids(space)
        runner = SweepRunner(CONFIG)
        baseline = runner.run(space)  # fault-free; warms the worker session

        plan = faults.FaultPlan(
            [
                faults.FaultSpec(
                    site="solve", kind="singular", match=ids[0], max_trips=1
                )
            ]
        )
        with faults.plan_active(plan):
            report = runner.run(space)

        degraded = report.result(ids[0])
        assert degraded.ok
        assert degraded.degradation
        assert degraded.peaks == baseline.result(ids[0]).peaks
        assert report.health.degraded_scenarios == [ids[0]]
        assert report.health.fallback_triggers
        assert report.health.faults_seen
        assert "sweep health" in report.text()

    def test_degradation_off_surfaces_the_raw_failure(self):
        space = small_space(corners=("tt",))
        ids = scenario_ids(space)
        config = CONFIG.replace(degradation=False)
        runner = SweepRunner(config)
        runner.run(space)  # warm the session so the fault hits the engine

        plan = faults.FaultPlan(
            [
                faults.FaultSpec(
                    site="solve", kind="singular", match=ids[0], max_trips=1
                )
            ]
        )
        with faults.plan_active(plan):
            report = runner.run(space)

        failed = report.result(ids[0])
        assert not failed.ok
        assert "SingularMatrixError" in failed.error


# ---------------------------------------------------------------------------
# The real thing: a worker pool under crash, hang and budgeted-crash faults


class TestPoolFaults:
    def test_sweep_survives_crashes_and_hangs(self, tmp_path):
        space = small_space(corners=("tt", "ff", "ss", "fs"))
        ids = scenario_ids(space)
        by_corner = {sid.split("/")[-2]: sid for sid in ids}

        reset_worker_sessions()
        baseline = SweepRunner(CONFIG).run(space)

        plan = {
            "ledger_dir": str(tmp_path / "ledger"),
            "faults": [
                # ff dies hard on every attempt -> must be quarantined.
                {"site": "scenario", "kind": "crash", "match": "*/ff/*"},
                # ss wedges its worker -> the stall detector must reap it.
                {
                    "site": "scenario",
                    "kind": "hang",
                    "match": "*/ss/*",
                    "hang_seconds": 300.0,
                },
                # tt crashes exactly once (cross-process ledger budget) ->
                # the retry must succeed bit-identically.
                {
                    "site": "scenario",
                    "kind": "crash",
                    "match": "*/tt/*",
                    "max_trips": 1,
                },
            ],
        }
        os.environ[faults.FAULT_PLAN_ENV] = json.dumps(plan)
        try:
            runner = SweepRunner(
                CONFIG,
                num_workers=2,
                shard_size=1,
                mp_context=multiprocessing.get_context("spawn"),
                max_retries=1,
                shard_timeout_s=8.0,
                retry_backoff_s=0.01,
            )
            report = runner.run(space)
        finally:
            del os.environ[faults.FAULT_PLAN_ENV]
            faults.clear_plan()

        # Nothing lost, nothing raised.
        assert len(report.results) == len(ids)
        assert [r.scenario_id for r in report.results] == ids

        # Exactly the two unrecoverable scenarios are quarantined.
        assert set(report.health.quarantined) == {
            by_corner["ff"],
            by_corner["ss"],
        }
        for sid in (by_corner["ff"], by_corner["ss"]):
            result = report.result(sid)
            assert not result.ok
            assert result.quarantined
            assert result.attempts > 1
            assert result.error.startswith("Quarantined")
            assert result.error_chain
            assert result.session_key

        # The budgeted crasher recovered on a retry...
        recovered = report.result(by_corner["tt"])
        assert recovered.ok
        assert not recovered.quarantined
        assert recovered.attempts > 1

        # ...and every healthy scenario reproduces the fault-free numbers
        # bit-identically.
        for sid in (by_corner["tt"], by_corner["fs"]):
            assert report.result(sid).peaks == baseline.result(sid).peaks
            assert report.result(sid).areas_v_ps == baseline.result(sid).areas_v_ps

        # The recovery machinery visibly engaged and is serialised.
        health = report.health
        assert health.worker_crashes >= 1
        assert health.pool_rebuilds >= 1
        assert health.timeouts >= 1
        assert health.retries >= 1
        assert health.events
        assert health.faults_seen
        payload = report.to_json()["health"]
        assert set(payload["quarantined"]) == set(health.quarantined)
        assert payload["worker_crashes"] == health.worker_crashes

    def test_shard_bisection_isolates_the_killer(self, tmp_path):
        # One big shard holding a crasher: the runner must split it instead
        # of quarantining innocents wholesale.
        space = small_space(corners=("tt", "ff", "ss", "fs"))
        ids = scenario_ids(space)
        crasher = [sid for sid in ids if "/ff/" in sid][0]

        plan = {
            "faults": [
                {"site": "scenario", "kind": "crash", "match": "*/ff/*"},
            ],
        }
        os.environ[faults.FAULT_PLAN_ENV] = json.dumps(plan)
        try:
            runner = SweepRunner(
                CONFIG,
                num_workers=2,
                shard_size=4,  # all four scenarios ride one shard
                mp_context=multiprocessing.get_context("spawn"),
                max_retries=1,
                retry_backoff_s=0.01,
            )
            report = runner.run(space)
        finally:
            del os.environ[faults.FAULT_PLAN_ENV]
            faults.clear_plan()

        assert len(report.results) == len(ids)
        assert report.health.shard_splits >= 1
        assert report.health.quarantined == [crasher]
        for sid in ids:
            if sid == crasher:
                assert report.result(sid).quarantined
            else:
                assert report.result(sid).ok
