"""SweepRunner: sharding, multiprocess parity, errors, reporting."""

import dataclasses
import multiprocessing

import pytest

from repro.api import AnalysisConfig
from repro.experiments import figure1_cluster
from repro.scenarios import (
    GeometryVariant,
    MonteCarloModel,
    ScenarioSpace,
    SweepRunner,
    reset_worker_sessions,
)

#: Cheap but real analysis settings: no glitch propagation (figure1 cluster),
#: no NRC, coarse VCCS grid, coarse time step.
CONFIG = AnalysisConfig(
    methods=("macromodel",), vccs_grid=5, check_nrc=False, dt=4e-12
)


@pytest.fixture(scope="module")
def base():
    return figure1_cluster(length_um=200.0, num_segments=3)


@pytest.fixture(scope="module")
def small_space(base):
    return ScenarioSpace(
        base=base,
        corners=("tt", "ff"),
        geometry=(GeometryVariant("nom"), GeometryVariant("half", length_scale=0.5)),
    )


@pytest.fixture(scope="module")
def serial_report(small_space, tmp_path_factory):
    reset_worker_sessions()
    config = dataclasses.replace(
        CONFIG, cache_dir=str(tmp_path_factory.mktemp("sweep-cache"))
    )
    return config, SweepRunner(config, num_workers=1).run(small_space)


class TestReducedMethodSweep:
    def test_reduction_order_axis_runs_end_to_end(self, base, tmp_path):
        reset_worker_sessions()
        config = dataclasses.replace(
            CONFIG,
            methods=("reduced",),
            reduction_threshold=0,
            cache_dir=str(tmp_path / "cache"),
        )
        space = ScenarioSpace(base=base, corners=("tt",), reduction_orders=(6, 10))
        report = SweepRunner(config, num_workers=1).run(space)
        assert len(report) == 2 and not report.errors
        for result in report:
            assert result.ok and result.peaks["reduced"] != 0.0
        by_order = report.by_axis("reduction_order")
        assert set(by_order) == {"6", "10"}
        assert all(stats.count == 1 for stats in by_order.values())


class TestSerialRun:
    def test_results_complete_and_ordered(self, small_space, serial_report):
        _, report = serial_report
        scenarios = small_space.expand()
        assert len(report) == len(scenarios) == 4
        assert [r.scenario_id for r in report] == [s.scenario_id for s in scenarios]
        assert not report.errors
        for result in report:
            assert result.ok and result.peaks["macromodel"] != 0.0

    def test_axis_aggregation(self, serial_report):
        _, report = serial_report
        by_corner = report.by_axis("corner")
        assert set(by_corner) == {"tt", "ff"}
        assert all(stats.count == 2 for stats in by_corner.values())
        # The fast corner injects more noise than typical.
        assert abs(by_corner["ff"].worst_peak) > abs(by_corner["tt"].worst_peak)
        by_geometry = report.by_axis("geometry")
        # Halving the coupled length reduces the injected noise.
        assert abs(by_geometry["half"].mean_abs_peak) < abs(
            by_geometry["nom"].mean_abs_peak
        )

    def test_worst_case_and_text(self, serial_report):
        _, report = serial_report
        worst = report.worst_case()
        assert abs(worst.peaks["macromodel"]) == max(
            abs(r.peaks["macromodel"]) for r in report
        )
        text = report.text()
        assert "worst case" in text and "scenarios" in text
        payload = report.to_json()
        assert payload["num_scenarios"] == 4 and payload["num_errors"] == 0

    def test_cache_stats_recorded(self, serial_report):
        _, report = serial_report
        # Two corners -> two libraries characterised, everything stored.
        assert report.cache_stats["characterizations"] > 0
        assert report.cache_stats["disk_stores"] == report.cache_stats["characterizations"]

    def test_result_lookup(self, serial_report):
        _, report = serial_report
        first = report.results[0]
        assert report.result(first.scenario_id) is first
        with pytest.raises(KeyError):
            report.result("ghost")


class TestMultiprocessParity:
    def test_two_spawned_workers_match_serial(self, small_space, serial_report):
        config, serial = serial_report
        # Spawn: workers share nothing with this process except the disk
        # cache directory, which the serial run has already warmed.
        parallel = SweepRunner(
            config,
            num_workers=2,
            mp_context=multiprocessing.get_context("spawn"),
        ).run(small_space)
        assert [r.scenario_id for r in parallel] == [r.scenario_id for r in serial]
        for left, right in zip(serial, parallel):
            assert left.peaks == right.peaks
            assert left.areas_v_ps == right.areas_v_ps
        # The warm disk cache meant no worker recharacterised anything.
        assert parallel.cache_stats["characterizations"] == 0
        assert parallel.cache_stats["disk_hits"] > 0


class TestSharding:
    def test_shards_group_by_session_key(self, base):
        space = ScenarioSpace(
            base=base,
            corners=("tt", "ff"),
            geometry=(GeometryVariant("nom"), GeometryVariant("half", length_scale=0.5)),
        )
        runner = SweepRunner(CONFIG, num_workers=2, shard_size=2)
        shards = runner._make_shards(space.expand())
        assert [len(shard) for shard in shards] == [2, 2]
        for shard in shards:
            keys = {scenario.session_key() for _, scenario in shard}
            assert len(keys) == 1  # one library per shard -> one session

    def test_default_shard_size_spreads_work(self, base):
        space = ScenarioSpace(
            base=base, corners=("tt",), monte_carlo=MonteCarloModel(num_samples=6)
        )
        shards = SweepRunner(CONFIG, num_workers=2)._make_shards(space.expand())
        assert len(shards) >= 2
        assert sum(len(shard) for shard in shards) == 6

    def test_runner_validation(self):
        with pytest.raises(ValueError):
            SweepRunner(CONFIG, num_workers=0)
        with pytest.raises(ValueError):
            SweepRunner(CONFIG, shard_size=0)


class TestErrorCollection:
    def test_failing_scenario_is_structured_not_fatal(self, base):
        space = ScenarioSpace(base=base, corners=("tt",))
        good, bad = space.expand()[0], None
        # A scenario whose victim driver does not exist in the library
        # fails inside the worker -- the sweep must survive it.
        broken_cluster = dataclasses.replace(
            base, victim=dataclasses.replace(base.victim, driver_cell="GHOST_X1")
        )
        bad = dataclasses.replace(
            good, scenario_id="broken/tt", cluster=broken_cluster
        )
        reset_worker_sessions()
        report = SweepRunner(CONFIG, num_workers=1).run([good, bad, good])
        assert len(report) == 3
        assert [r.ok for r in report] == [True, False, True]
        failed = report.results[1]
        assert "GHOST_X1" in failed.error and "KeyError" in failed.error
        assert failed.traceback_text
        assert failed.peaks == {}
        assert len(report.errors) == 1
        assert "ERROR broken/tt" in report.text()
        by_corner = report.by_axis("corner")
        assert by_corner["tt"].errors == 1 and by_corner["tt"].count == 2


class TestSolverBackendMixing:
    def test_mixed_backend_sweep_is_backend_independent(self, base):
        """One sweep mixing forced-dense and forced-sparse scenarios.

        The two backends must produce identical scalar metrics for the same
        underlying scenario, and the explicit override must surface as a
        ("backend", ...) axis on the results.
        """
        space = ScenarioSpace(base=base, corners=("tt",))
        (nominal,) = space.expand()
        scenarios = [
            dataclasses.replace(nominal, scenario_id=f"{nominal.scenario_id}/{b}",
                                solver_backend=b)
            for b in ("dense", "sparse")
        ]
        reset_worker_sessions()
        report = SweepRunner(CONFIG, num_workers=1).run(scenarios)
        assert not report.errors
        dense, sparse = report.results
        assert ("backend", "dense") in dense.axes
        assert ("backend", "sparse") in sparse.axes
        assert dense.peaks["macromodel"] == pytest.approx(
            sparse.peaks["macromodel"], rel=1e-9
        )
        assert dense.areas_v_ps["macromodel"] == pytest.approx(
            sparse.areas_v_ps["macromodel"], rel=1e-9
        )

    def test_space_level_backend_stamps_every_scenario(self, base):
        space = ScenarioSpace(base=base, corners=("tt", "ff"), solver_backend="dense")
        scenarios = space.expand()
        assert all(s.solver_backend == "dense" for s in scenarios)
        assert all(("backend", "dense") in s.axes() for s in scenarios)

    def test_default_scenarios_keep_historical_axes(self, base):
        space = ScenarioSpace(base=base, corners=("tt",))
        (scenario,) = space.expand()
        assert scenario.solver_backend is None
        assert scenario.axes()[-1] == ("sample", "nominal")

    def test_space_rejects_unknown_backend(self, base):
        with pytest.raises(ValueError, match="solver_backend"):
            ScenarioSpace(base=base, corners=("tt",), solver_backend="gpu")
