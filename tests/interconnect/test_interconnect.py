"""Interconnect tests: extraction, coupled RC networks, moments and reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import (
    CoupledRCNetwork,
    ParallelBusGeometry,
    PiModel,
    WireSpec,
    admittance_moments,
    build_coupled_rc_network,
    elmore_delay,
    reduce_to_coupled_pi,
    total_port_capacitance,
    transfer_moments,
)
from repro.reduction import prima_reduce
from repro.technology import get_technology
from repro.units import fF, to_fF


@pytest.fixture(scope="module")
def tech():
    return get_technology("cmos130")


@pytest.fixture(scope="module")
def two_wire_network(tech):
    geometry = ParallelBusGeometry.two_parallel_wires(length_um=500.0, layer_index=4)
    return build_coupled_rc_network(geometry, tech, num_segments=10)


class TestGeometry:
    def test_wire_spec_validation(self):
        with pytest.raises(ValueError):
            WireSpec("w", length_um=-1.0)
        with pytest.raises(ValueError):
            WireSpec("w", length_um=100.0, coupled_length_um=200.0)
        with pytest.raises(ValueError):
            WireSpec("w", length_um=100.0, width_factor=0.0)
        spec = WireSpec("w", length_um=100.0)
        assert spec.coupled_length_um == pytest.approx(100.0)

    def test_bus_validation(self):
        with pytest.raises(ValueError):
            ParallelBusGeometry(wires=[])
        with pytest.raises(ValueError):
            ParallelBusGeometry(wires=[WireSpec("a", 10), WireSpec("a", 10)])
        with pytest.raises(ValueError):
            ParallelBusGeometry(wires=[WireSpec("a", 10)], spacing_factor=0.0)

    def test_extraction_totals_match_layer_coefficients(self, tech):
        geometry = ParallelBusGeometry.two_parallel_wires(length_um=500.0, layer_index=4)
        layer = tech.layer(4)
        parasitics = geometry.extract(tech, num_segments=10)
        assert parasitics.total_resistance(0) == pytest.approx(layer.resistance(500.0))
        assert parasitics.total_coupling_cap(0) == pytest.approx(layer.coupling_cap(500.0), rel=0.05)

    def test_partial_coupling(self, tech):
        geometry = ParallelBusGeometry(
            wires=[WireSpec("a", 400.0, coupled_length_um=200.0), WireSpec("v", 400.0)],
            layer_index=4,
        )
        parasitics = geometry.extract(tech, num_segments=8)
        full = tech.layer(4).coupling_cap(200.0)
        assert parasitics.total_coupling_cap(0) == pytest.approx(full, rel=0.05)
        # Half the segments should carry no coupling.
        assert sum(1 for c in parasitics.segment_coupling_cap[0] if c == 0.0) >= 3

    def test_victim_between_aggressors_layout(self):
        geometry = ParallelBusGeometry.victim_between_aggressors(length_um=300.0)
        assert [w.name for w in geometry.wires] == ["aggr1", "victim", "aggr2"]
        assert geometry.adjacent_pairs() == [(0, 1), (1, 2)]
        assert geometry.wire_index("victim") == 1
        with pytest.raises(KeyError):
            geometry.wire_index("nope")
        with pytest.raises(ValueError):
            ParallelBusGeometry.victim_between_aggressors(aggressor_names=("a",))


class TestCoupledRCNetwork:
    def test_totals(self, two_wire_network, tech):
        layer = tech.layer(4)
        network = two_wire_network
        assert network.total_resistance("victim") == pytest.approx(layer.resistance(500.0))
        assert network.total_ground_cap("victim") == pytest.approx(layer.ground_cap(500.0), rel=0.05)
        assert network.total_coupling_cap("victim", "aggressor") == pytest.approx(
            layer.coupling_cap(500.0), rel=0.05
        )

    def test_matrices_are_symmetric_and_psd(self, two_wire_network):
        G, C, nodes = two_wire_network.matrices()
        assert np.allclose(G, G.T)
        assert np.allclose(C, C.T)
        eigenvalues_c = np.linalg.eigvalsh(C)
        assert eigenvalues_c.min() > -1e-25
        eigenvalues_g = np.linalg.eigvalsh(G)
        assert eigenvalues_g.min() > -1e-12

    def test_instantiation_matches_element_count(self, two_wire_network):
        from repro.circuit import Circuit

        circuit = Circuit("wires")
        two_wire_network.instantiate(circuit)
        assert len(circuit.elements) == len(two_wire_network.elements)

    def test_validation(self):
        network = CoupledRCNetwork("x")
        with pytest.raises(ValueError):
            network.add_resistor("a", "b", -1.0)
        with pytest.raises(ValueError):
            network.add_capacitor("a", "b", -1e-15)
        network.add_capacitor("a", "b", 0.0)  # silently ignored
        assert len(network.elements) == 0


class TestMoments:
    def test_first_moment_is_total_capacitance(self, two_wire_network, tech):
        y1 = total_port_capacitance(two_wire_network)
        layer = tech.layer(4)
        total_ground = layer.ground_cap(500.0)
        total_coupling = layer.coupling_cap(500.0)
        # Diagonal: ground + coupling (other port shorted); off-diagonal: -coupling.
        assert y1[0, 0] == pytest.approx(total_ground + total_coupling, rel=0.05)
        assert y1[0, 1] == pytest.approx(-total_coupling, rel=0.05)
        assert np.allclose(y1, y1.T)

    def test_dc_admittance_is_zero(self, two_wire_network):
        y0 = admittance_moments(two_wire_network, 1)[0]
        assert np.max(np.abs(y0)) < 1e-12

    def test_elmore_delay_of_uniform_ladder(self, tech):
        """A single uniform RC line: Elmore delay to the far end = R*C/2 + ..."""
        geometry = ParallelBusGeometry(wires=[WireSpec("net", 500.0)], layer_index=4)
        network = build_coupled_rc_network(geometry, tech, num_segments=50)
        r_total = network.total_resistance("net")
        c_total = network.total_ground_cap("net")
        expected = 0.5 * r_total * c_total  # distributed-line limit
        assert elmore_delay(network, "net") == pytest.approx(expected, rel=0.05)

    def test_transfer_moment_zeroth_is_unity_on_driven_net(self, two_wire_network):
        moments = transfer_moments(two_wire_network, "victim", "victim:10", 2)
        assert moments[0] == pytest.approx(1.0, abs=1e-9)
        cross = transfer_moments(two_wire_network, "victim", "aggressor:10", 2)
        assert cross[0] == pytest.approx(0.0, abs=1e-9)

    def test_unknown_net_or_node(self, two_wire_network):
        with pytest.raises(KeyError):
            transfer_moments(two_wire_network, "nosuch", "victim:10")
        with pytest.raises(KeyError):
            transfer_moments(two_wire_network, "victim", "nosuch:1")
        with pytest.raises(ValueError):
            admittance_moments(two_wire_network, 0)


class TestPiModel:
    def test_pi_matches_known_rc_ladder(self):
        """Hand-checked: R = 100 ohm, near/far caps of 10 fF each."""
        network = CoupledRCNetwork("ladder")
        network.add_capacitor("a", "0", fF(10), net="n")
        network.add_resistor("a", "b", 100.0, net="n")
        network.add_capacitor("b", "0", fF(10), net="n")
        network.set_ports("n", "a", "b")
        y = admittance_moments(network, 4)
        pi = PiModel.from_moments(y[1][0, 0], y[2][0, 0], y[3][0, 0])
        assert pi.c_near == pytest.approx(fF(10), rel=1e-6)
        assert pi.c_far == pytest.approx(fF(10), rel=1e-6)
        assert pi.resistance == pytest.approx(100.0, rel=1e-6)
        y1, y2, y3 = pi.admittance_moments()
        assert y1 == pytest.approx(y[1][0, 0], rel=1e-9)
        assert y2 == pytest.approx(y[2][0, 0], rel=1e-9)
        assert y3 == pytest.approx(y[3][0, 0], rel=1e-9)

    def test_degenerate_purely_capacitive_load(self):
        pi = PiModel.from_moments(fF(20), 0.0, 0.0)
        assert pi.c_near == pytest.approx(fF(20))
        assert pi.c_far == 0.0
        assert PiModel.from_moments(0.0, 0.0, 0.0).total_capacitance == 0.0

    def test_coupled_reduction_preserves_first_moments(self, two_wire_network):
        reduced = reduce_to_coupled_pi(two_wire_network).realize()
        y1_full = total_port_capacitance(two_wire_network)
        y1_reduced = total_port_capacitance(reduced)
        assert np.allclose(y1_full, y1_reduced, rtol=1e-6)
        # The reduced network is much smaller than the distributed one.
        assert reduced.num_nodes < two_wire_network.num_nodes / 2

    def test_coupled_reduction_summary_and_access(self, two_wire_network):
        model = reduce_to_coupled_pi(two_wire_network)
        assert model.coupling_between("victim", "aggressor") > 0.0
        assert model.coupling_between("aggressor", "victim") > 0.0
        assert "victim" in model.summary()
        assert model.pi("victim").resistance > 0.0
        with pytest.raises(ValueError):
            reduce_to_coupled_pi(CoupledRCNetwork("empty"))


class TestPrima:
    def test_prima_matches_low_order_moments(self, two_wire_network):
        reduced = prima_reduce(two_wire_network, num_block_iterations=4)
        full_moments = admittance_moments(two_wire_network, 3)
        reduced_moments = reduced.admittance_moments(3)
        assert np.allclose(full_moments[1], reduced_moments[1], rtol=1e-3)
        assert np.allclose(full_moments[2], reduced_moments[2], rtol=5e-2)
        assert reduced.order <= 4 * reduced.num_ports
        assert reduced.order < two_wire_network.num_nodes

    def test_prima_admittance_at_frequency(self, two_wire_network):
        reduced = prima_reduce(two_wire_network, num_block_iterations=3)
        y = reduced.admittance(1j * 2 * np.pi * 1e9)
        assert y.shape == (2, 2)
        # Passive RC: the real part of the driving-point admittance is positive.
        assert y[0, 0].real > 0.0


@given(
    r=st.floats(min_value=10.0, max_value=5e3),
    c_near=st.floats(min_value=1e-15, max_value=1e-13),
    c_far=st.floats(min_value=1e-15, max_value=1e-13),
)
@settings(max_examples=40, deadline=None)
def test_property_pi_moment_round_trip(r, c_near, c_far):
    """Building a pi from the moments of a pi recovers the original values."""
    y1 = c_near + c_far
    y2 = -r * c_far ** 2
    y3 = r ** 2 * c_far ** 3
    pi = PiModel.from_moments(y1, y2, y3)
    assert pi.total_capacitance == pytest.approx(y1, rel=1e-9)
    assert pi.c_far == pytest.approx(c_far, rel=1e-6)
    assert pi.resistance == pytest.approx(r, rel=1e-6)
