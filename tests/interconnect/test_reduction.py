"""Differential tests of the PRIMA reduction subsystem (repro.reduction).

Every accuracy claim is checked against an unreduced reference: the sparse
(or dense) transient of the same circuit for the circuit-level path, the
dedicated macromodel engine for the reduced engine, and the pinned golden
fixture corpus for the end-to-end ``method="reduced"`` analysis.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import transient
from repro.interconnect import (
    make_coupled_pair,
    make_driven_circuit,
    make_rc_ladder,
    make_rc_mesh,
    make_rc_tree,
    make_victim_aggressor_circuit,
)
from repro.noise.engine import DedicatedNoiseEngine, MacromodelNetwork
from repro.reduction import (
    DEFAULT_REDUCTION_ORDER,
    ReducedOrderEngine,
    check_reduced_system,
    prima_project,
    prima_reduce_system,
    reduce_circuit,
)
from repro.units import fF, ps

#: Required relative accuracy of the default order on the synthetic
#: workloads (the bench gate enforces the same floor at benchmark sizes).
MAX_REL_ERROR = 1e-3

#: A full-order (square-basis) projection is a similarity transform; the
#: reduced transient must match the unreduced one to solver precision.
EXACT_TOL = 1e-7


def _rel_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    scale = max(float(np.abs(reference).max()), 1e-30)
    return float(np.abs(reference - candidate).max()) / scale


def _fixed_wire_ladder(num_nodes, *, total_resistance=1.2e3, total_capacitance=fF(200)):
    """A fixed-size wire discretised into ``num_nodes`` segments.

    Scaling per-segment R and C with ``1/num_nodes`` keeps the net's time
    constant independent of the discretisation, so the same simulation
    window exercises every size.
    """
    return make_rc_ladder(
        num_nodes,
        segment_resistance=total_resistance / num_nodes,
        node_capacitance=total_capacitance / num_nodes,
    )


def _reference_waveform(circuit, node, *, t_stop, dt):
    result = transient(circuit, t_stop, dt, solver="fast")
    return result.node_voltage(node).values


class TestPrimaProject:
    def test_basis_is_orthonormal(self):
        circuit = make_driven_circuit(make_rc_ladder(30))
        circuit.prepare()
        d = circuit.kernel.descriptor_system(gmin=circuit.gmin)
        V = prima_project(d.G, d.C, d.B, order=6)
        assert np.allclose(V.T @ V, np.eye(V.shape[1]), atol=1e-10)

    def test_order_saturates_at_reachable_subspace(self):
        # The basis stops growing once it spans the reachable Krylov
        # subspace (at most n columns; fewer when C is rank-deficient) --
        # requesting more iterations never loops or over-fills.
        circuit = make_driven_circuit(make_rc_ladder(10))
        circuit.prepare()
        d = circuit.kernel.descriptor_system(gmin=circuit.gmin)
        V = prima_project(d.G, d.C, d.B, order=1000)
        assert V.shape[0] == d.num_unknowns
        assert V.shape[1] <= d.num_unknowns
        again = prima_project(d.G, d.C, d.B, order=2000)
        assert again.shape == V.shape

    def test_invalid_inputs_rejected(self):
        G = np.eye(3)
        C = np.eye(3)
        with pytest.raises(ValueError):
            prima_project(G, C, np.zeros((3, 1)), order=2)
        with pytest.raises(ValueError):
            prima_project(G, C, np.eye(3)[:, :1], order=0)

    def test_singular_g_falls_back_to_shifted_expansion(self):
        # A floating RC pair: G is singular at DC, so the projector must
        # re-expand about its trace-ratio corner frequency.
        G = np.array([[1e-3, -1e-3], [-1e-3, 1e-3]])
        C = np.diag([fF(5), fF(2)])
        B = np.array([[1.0], [0.0]])
        V = prima_project(G, C, B, order=2)
        assert V.shape == (2, 2)
        assert np.allclose(V.T @ V, np.eye(2), atol=1e-10)


class TestReducedCircuitPath:
    def test_full_order_is_exact(self):
        net = make_rc_ladder(40, coupling_capacitance=fF(1))
        circuit = make_driven_circuit(net)
        circuit.prepare()
        reduced = reduce_circuit(circuit, order=circuit.num_unknowns)
        assert reduced.order == circuit.num_unknowns
        run = reduced.transient(ps(400), ps(1))
        node = net.receiver_nodes["vic"]
        reference = _reference_waveform(circuit, node, t_stop=ps(400), dt=ps(1))
        assert np.allclose(run.times, transient(circuit, ps(400), ps(1)).times)
        assert float(np.abs(run.node_voltage(node) - reference).max()) < EXACT_TOL

    def test_error_decreases_monotonically_with_order(self):
        # A fixed 1.2 kOhm / 200 fF wire discretised into 300 segments:
        # refining the discretisation must not slow the net down, so the
        # per-segment values scale with 1/n (the MOR benchmark idiom).
        net = _fixed_wire_ladder(300)
        circuit = make_driven_circuit(net)
        node = net.receiver_nodes["vic"]
        reference = _reference_waveform(circuit, node, t_stop=ps(500), dt=ps(1))
        errors = []
        for order in (2, 4, 8):
            run = reduce_circuit(circuit, order=order).transient(ps(500), ps(1))
            errors.append(_rel_error(reference, run.node_voltage(node)))
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < MAX_REL_ERROR

    @pytest.mark.parametrize(
        "make_circuit, node",
        [
            (
                lambda: make_driven_circuit(make_rc_tree(200, branching=3)),
                "tree:200",
            ),
            (
                lambda: make_victim_aggressor_circuit(
                    make_coupled_pair(
                        120,
                        segment_resistance=1.2e3 / 120,
                        node_capacitance=fF(200) / 120,
                        coupling_capacitance=fF(100) / 120,
                    )
                ),
                "vic:120",
            ),
            (
                lambda: make_driven_circuit(make_rc_mesh(12, 12)),
                "mesh:11.11",
            ),
        ],
    )
    def test_default_order_meets_error_floor(self, make_circuit, node):
        circuit = make_circuit()
        reference = _reference_waveform(circuit, node, t_stop=ps(400), dt=ps(1))
        run = reduce_circuit(circuit, order=DEFAULT_REDUCTION_ORDER).transient(
            ps(400), ps(1)
        )
        assert _rel_error(reference, run.node_voltage(node)) < MAX_REL_ERROR

    @given(
        num_nodes=st.integers(20, 90),
        total_resistance=st.floats(200.0, 2e3),
        total_capacitance=st.floats(50.0, 400.0),
        tree=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_networks_meet_error_floor(
        self, num_nodes, total_resistance, total_capacitance, tree
    ):
        # Random fixed-size wires (so the response always fits the window)
        # discretised into a random number of ladder or tree segments.
        segment_r = total_resistance / num_nodes
        segment_c = total_capacitance * fF(1) / num_nodes
        if tree:
            net = make_rc_tree(
                num_nodes,
                segment_resistance=segment_r,
                node_capacitance=segment_c,
            )
            node = f"tree:{num_nodes}"
        else:
            net = make_rc_ladder(
                num_nodes,
                segment_resistance=segment_r,
                node_capacitance=segment_c,
            )
            node = f"vic:{num_nodes}"
        circuit = make_driven_circuit(net)
        reference = _reference_waveform(circuit, node, t_stop=ps(300), dt=ps(1))
        run = reduce_circuit(circuit, order=DEFAULT_REDUCTION_ORDER).transient(
            ps(300), ps(1)
        )
        assert _rel_error(reference, run.node_voltage(node)) < MAX_REL_ERROR

    def test_keep_nodes_validates_names(self):
        circuit = make_driven_circuit(make_rc_ladder(10))
        with pytest.raises(KeyError):
            reduce_circuit(circuit, keep_nodes=["no_such_node"])


class TestStabilityReport:
    def test_symmetric_rc_reduction_is_passive_and_stable(self):
        net = make_rc_ladder(80, coupling_capacitance=fF(1))
        G, C, _nodes = net.matrices()
        G = G + 1e-9 * np.eye(G.shape[0])
        B = np.zeros((G.shape[0], 1))
        B[0, 0] = 1.0
        reduced = prima_reduce_system(G, C, B, order=8)
        report = check_reduced_system(reduced)
        assert report.symmetric
        assert report.passive
        assert report.stable
        assert report.max_pole_real_part < 0.0
        assert "passive=True" in report.summary()

    def test_mna_bordered_reduction_is_passive_and_stable(self):
        # Voltage-source branch rows: non-symmetric, but the PRIMA sign
        # convention keeps the symmetric part PSD.
        circuit = make_driven_circuit(make_rc_ladder(50))
        reduced = reduce_circuit(circuit, order=10)
        report = check_reduced_system(reduced.reduced)
        assert not report.symmetric
        assert report.passive
        assert report.stable


def _engine_network(num_nodes):
    net = make_rc_ladder(num_nodes, coupling_capacitance=0.0)
    network = MacromodelNetwork("engine_diff")
    network.import_rc_network(net)
    driver = net.driver_nodes["vic"]
    receiver = net.receiver_nodes["vic"]
    network.add_holding_resistor(receiver, 5e4, 1.2)
    network.add_current_source(
        driver, lambda t: 1e-4 * np.exp(-(((t - 2e-10) / 5e-11) ** 2))
    )
    return network, driver, receiver


class TestReducedOrderEngine:
    def test_linear_matches_dedicated_engine(self):
        network, driver, receiver = _engine_network(60)
        reference = DedicatedNoiseEngine(network).simulate(
            ps(800), ps(1), observe=[receiver]
        )
        engine = ReducedOrderEngine(network, reduction_order=DEFAULT_REDUCTION_ORDER)
        waveforms = engine.simulate(ps(800), ps(1), observe=[receiver])
        assert engine.order < network.num_nodes
        assert _rel_error(
            reference[receiver].values, waveforms[receiver].values
        ) < MAX_REL_ERROR
        assert engine.statistics.fast_path_runs == 1

    def test_nonlinear_victim_matches_dedicated_engine(self):
        network, driver, receiver = _engine_network(60)

        def clamp(t, v):
            conductance = 5e-3
            if v > 1.2:
                return -conductance * (v - 1.2), -conductance
            return 0.0, 0.0

        network.add_nonlinear_source(receiver, clamp)
        reference = DedicatedNoiseEngine(network).simulate(
            ps(800), ps(1), observe=[receiver]
        )
        engine = ReducedOrderEngine(network, reduction_order=DEFAULT_REDUCTION_ORDER)
        waveforms = engine.simulate(ps(800), ps(1), observe=[receiver])
        assert _rel_error(
            reference[receiver].values, waveforms[receiver].values
        ) < MAX_REL_ERROR
        assert engine.statistics.newton_iterations > 0

    def test_requires_an_injection_site(self):
        network = MacromodelNetwork("no_sources")
        network.add_resistance("a", "b", 100.0)
        network.add_capacitance("b", "0", fF(4))
        with pytest.raises(ValueError):
            ReducedOrderEngine(network)


FIXTURE_PATH = Path(__file__).parent.parent / "fixtures" / "golden_clusters.json"

#: End-to-end tolerance of the reduced method against the pinned golden
#: (transistor-level) corpus.  The reduced path keeps the full wiring, so
#: its macromodel error budget matches the macromodel method's: a few
#: percent on peak/area/width (the paper's Tables 1-2 ballpark).
FIXTURE_RTOL = 0.075


class TestReducedAnalysisEndToEnd:
    def test_reduced_method_tracks_pinned_golden_corpus(self):
        from repro.api import AnalysisConfig, NoiseAnalysisSession
        from repro.experiments import accuracy_sweep_clusters
        from repro.technology import build_default_library

        pinned = json.loads(FIXTURE_PATH.read_text())["clusters"]
        cases = accuracy_sweep_clusters(technologies=("cmos130",), quick=True)
        config = AnalysisConfig(
            methods=("reduced",),
            vccs_grid=13,
            check_nrc=False,
            reduction_threshold=0,  # force projection even for small clusters
        )
        session = NoiseAnalysisSession(build_default_library("cmos130"), config)
        reports = session.analyze_many(
            [case.spec for case in cases],
            labels=[case.label for case in cases],
            on_error="raise",
        )
        for report in reports:
            result = report.results["reduced"]
            assert result.method.startswith("reduced(order=")
            assert result.details["reduced"] is True
            golden = pinned[report.label]["golden"]
            for scalar in ("peak", "area_v_ps", "width_ps"):
                reference = golden[scalar]
                value = getattr(result, scalar)
                assert value == pytest.approx(reference, rel=FIXTURE_RTOL), (
                    f"{report.label}: {scalar} reduced={value} golden={reference}"
                )

    def test_small_cluster_falls_back_to_direct_engine(self):
        from repro.api import AnalysisConfig, NoiseAnalysisSession
        from repro.experiments import accuracy_sweep_clusters
        from repro.technology import build_default_library

        cases = accuracy_sweep_clusters(technologies=("cmos130",), quick=True)[:1]
        config = AnalysisConfig(methods=("reduced",), vccs_grid=9, check_nrc=False)
        session = NoiseAnalysisSession(build_default_library("cmos130"), config)
        report = session.analyze_many(
            [cases[0].spec], labels=[cases[0].label], on_error="raise"
        )[0]
        result = report.results["reduced"]
        # Paper-sized clusters sit far below REDUCTION_AUTO_THRESHOLD.
        assert result.method == "reduced(direct)"
        assert result.details["reduced"] is False
