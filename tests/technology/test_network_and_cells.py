"""Tests for the pull-network algebra and the standard-cell generators."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, dc_operating_point
from repro.technology import (
    CellLibrary,
    Leaf,
    Parallel,
    Series,
    StandardCell,
    build_default_library,
    cmos130,
    cmos90,
    default_cell_set,
    get_technology,
)


# ---------------------------------------------------------------------------
# Pull-network algebra
# ---------------------------------------------------------------------------

class TestPullNetwork:
    def test_leaf_conduction(self):
        leaf = Leaf("A")
        assert leaf.conducts({"A": True})
        assert not leaf.conducts({"A": False})
        assert leaf.conducts_pmos({"A": False})
        with pytest.raises(KeyError):
            leaf.conducts({})

    def test_series_parallel_semantics(self):
        series = Series([Leaf("A"), Leaf("B")])
        parallel = Parallel([Leaf("A"), Leaf("B")])
        assert series.conducts({"A": True, "B": True})
        assert not series.conducts({"A": True, "B": False})
        assert parallel.conducts({"A": True, "B": False})
        assert not parallel.conducts({"A": False, "B": False})

    def test_operators_build_expressions(self):
        expr = (Leaf("A") & Leaf("B")) | Leaf("C")
        assert expr.conducts({"A": True, "B": True, "C": False})
        assert expr.conducts({"A": False, "B": False, "C": True})
        assert not expr.conducts({"A": True, "B": False, "C": False})

    def test_dual_of_dual_is_equivalent(self):
        expr = Series([Parallel([Leaf("A"), Leaf("B")]), Leaf("C")])
        double_dual = expr.dual().dual()
        for values in itertools.product([False, True], repeat=3):
            state = dict(zip("ABC", values))
            assert expr.conducts(state) == double_dual.conducts(state)

    def test_dual_demorgan(self):
        """The dual network conducts exactly when the original does not...

        ...under complemented inputs (De Morgan): this is what guarantees the
        pull-up/pull-down pair is complementary.
        """
        expr = Parallel([Series([Leaf("A"), Leaf("B")]), Leaf("C")])
        dual = expr.dual()
        for values in itertools.product([False, True], repeat=3):
            state = dict(zip("ABC", values))
            complemented = {k: not v for k, v in state.items()}
            assert dual.conducts(complemented) == (not expr.conducts(state))

    def test_depth_and_counts(self):
        expr = Series([Leaf("A"), Parallel([Leaf("B"), Leaf("C")]), Leaf("A")])
        assert expr.depth() == 3
        assert expr.count_leaves() == {"A": 2, "B": 1, "C": 1}
        assert expr.inputs() == ["A", "B", "C"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Series([Leaf("A")])
        with pytest.raises(ValueError):
            Parallel([Leaf("A")])

    def test_flattening(self):
        nested = Series([Series([Leaf("A"), Leaf("B")]), Leaf("C")])
        assert len(nested.children) == 3


@st.composite
def network_strategy(draw, depth=0):
    if depth >= 2:
        return Leaf(draw(st.sampled_from(["A", "B", "C", "D"])))
    kind = draw(st.sampled_from(["leaf", "series", "parallel"]))
    if kind == "leaf":
        return Leaf(draw(st.sampled_from(["A", "B", "C", "D"])))
    children = [draw(network_strategy(depth=depth + 1)) for _ in range(draw(st.integers(2, 3)))]
    return Series(children) if kind == "series" else Parallel(children)


@given(network_strategy())
@settings(max_examples=50, deadline=None)
def test_property_dual_is_demorgan_complement(network):
    inputs = network.inputs()
    dual = network.dual()
    for values in itertools.product([False, True], repeat=len(inputs)):
        state = dict(zip(inputs, values))
        complemented = {k: not v for k, v in state.items()}
        assert dual.conducts(complemented) == (not network.conducts(state))


# ---------------------------------------------------------------------------
# Standard cells
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def library():
    return build_default_library("cmos130")


EXPECTED_FUNCTIONS = {
    "INV_X1": lambda v: not v["A"],
    "NAND2_X1": lambda v: not (v["A"] and v["B"]),
    "NOR2_X1": lambda v: not (v["A"] or v["B"]),
    "NAND3_X1": lambda v: not (v["A"] and v["B"] and v["C"]),
    "NOR3_X1": lambda v: not (v["A"] or v["B"] or v["C"]),
    "AOI21_X1": lambda v: not ((v["A"] and v["B"]) or v["C"]),
    "OAI21_X1": lambda v: not ((v["A"] or v["B"]) and v["C"]),
    "BUF_X2": lambda v: v["A"],
    "AND2_X1": lambda v: v["A"] and v["B"],
    "OR2_X1": lambda v: v["A"] or v["B"],
}


class TestCellLogic:
    @pytest.mark.parametrize("cell_name", sorted(EXPECTED_FUNCTIONS))
    def test_truth_tables(self, library, cell_name):
        cell = library[cell_name]
        expected = EXPECTED_FUNCTIONS[cell_name]
        for state in cell.all_input_states():
            assert cell.logic(state) == expected(state), f"{cell_name} {state}"

    def test_quiet_states_and_worst_case(self, library):
        nand = library["NAND2_X1"]
        low_states = nand.quiet_input_states(False)
        assert low_states == [{"A": True, "B": True}]
        worst_high = nand.worst_case_quiet_state(True)
        # Weakest pull-up: only one PMOS conducting.
        assert sum(1 for v in worst_high.values() if not v) == 1

    def test_noise_arcs_nand(self, library):
        nand = library["NAND2_X1"]
        arcs = nand.noise_arcs(output_high=False)
        assert {arc.input_pin for arc in arcs} == {"A", "B"}
        for arc in arcs:
            assert not arc.glitch_rising  # inputs are quiet high, glitch falls
            assert not arc.output_high
            assert arc.input_state()[arc.input_pin] is True
            assert "falling" in arc.describe()

    def test_noise_arcs_nor_output_high(self, library):
        nor = library["NOR2_X1"]
        arcs = nor.noise_arcs(output_high=True)
        assert arcs
        for arc in arcs:
            assert arc.glitch_rising

    def test_inverter_worst_case_quiet_states(self, library):
        cell = library["INV_X1"]
        assert cell.worst_case_quiet_state(True) == {"A": False}
        assert cell.worst_case_quiet_state(False) == {"A": True}


class TestCellInstantiation:
    def test_nand_transistor_count(self, library):
        tech = library.technology
        cell = library["NAND2_X1"]
        circuit = Circuit("nand")
        circuit.add_voltage_source("VDD", "vdd", "0", tech.vdd)
        circuit.add_voltage_source("VA", "a", "0", tech.vdd)
        circuit.add_voltage_source("VB", "b", "0", tech.vdd)
        cell.instantiate(circuit, "U1", {"A": "a", "B": "b", "Z": "z"}, tech)
        from repro.circuit import MOSFET

        fets = circuit.elements_of_type(MOSFET)
        assert len(fets) == 4
        nmos = [f for f in fets if f.params.polarity == "n"]
        pmos = [f for f in fets if f.params.polarity == "p"]
        assert len(nmos) == 2 and len(pmos) == 2
        # Series NMOS stack is upsized by the stack depth.
        assert nmos[0].w == pytest.approx(2 * tech.wn_unit)
        assert pmos[0].w == pytest.approx(tech.wp_unit)

    def test_two_stage_cell_has_internal_node(self, library):
        tech = library.technology
        cell = library["AND2_X1"]
        circuit = Circuit("and2")
        circuit.add_voltage_source("VDD", "vdd", "0", tech.vdd)
        circuit.add_voltage_source("VA", "a", "0", tech.vdd)
        circuit.add_voltage_source("VB", "b", "0", tech.vdd)
        cell.instantiate(circuit, "U1", {"A": "a", "B": "b", "Z": "z"}, tech)
        assert circuit.has_node("u1.y")
        solution = dc_operating_point(circuit)
        assert solution["z"] == pytest.approx(tech.vdd, abs=0.02)

    def test_dc_levels_match_logic_for_all_cells(self, library):
        tech = library.technology
        for cell in library:
            state = cell.worst_case_quiet_state(False)
            circuit = Circuit(f"dc_{cell.name}")
            circuit.add_voltage_source("VDD", "vdd", "0", tech.vdd)
            pins = {cell.output_pin: "z"}
            for pin, value in state.items():
                circuit.add_voltage_source(f"V_{pin}", f"in_{pin}", "0", tech.vdd if value else 0.0)
                pins[pin] = f"in_{pin}"
            cell.instantiate(circuit, "U1", pins, tech)
            solution = dc_operating_point(circuit)
            assert solution["z"] == pytest.approx(0.0, abs=0.05), cell.name

    def test_missing_pin_mapping_raises(self, library):
        tech = library.technology
        cell = library["NAND2_X1"]
        with pytest.raises(KeyError):
            cell.instantiate(Circuit("x"), "U1", {"A": "a", "Z": "z"}, tech)

    def test_input_capacitance_scales_with_strength(self, library):
        tech = library.technology
        assert library["INV_X2"].input_capacitance(tech) > library["INV_X1"].input_capacitance(tech)
        assert library["INV_X4"].input_capacitance(tech) > library["INV_X2"].input_capacitance(tech)
        with pytest.raises(KeyError):
            library["INV_X1"].input_capacitance(tech, "Q")

    def test_output_diffusion_capacitance_positive(self, library):
        tech = library.technology
        for cell in library:
            assert cell.output_diffusion_capacitance(tech) > 0.0


# ---------------------------------------------------------------------------
# Technologies and library container
# ---------------------------------------------------------------------------

class TestTechnologyAndLibrary:
    def test_presets(self):
        t130 = cmos130()
        t90 = cmos90()
        assert t130.vdd == pytest.approx(1.2)
        assert t90.vdd == pytest.approx(1.0)
        assert t90.nmos.alpha < 2.0
        assert t130.layer(4).name == "M4"
        with pytest.raises(KeyError):
            t130.layer(9)
        low, high = t130.characterization_voltage_range()
        assert low < 0.0 and high > t130.vdd

    def test_get_technology(self):
        assert get_technology("cmos90").name == "cmos90"
        with pytest.raises(KeyError):
            get_technology("cmos7")

    def test_metal_layer_scaling(self):
        layer = cmos130().layer(4)
        assert layer.resistance(500.0) == pytest.approx(500.0 * layer.resistance_per_um)
        assert layer.coupling_cap(500.0, spacing_factor=2.0) == pytest.approx(
            0.5 * layer.coupling_cap(500.0), rel=1e-9
        )
        with pytest.raises(ValueError):
            layer.coupling_cap(500.0, spacing_factor=0.0)

    def test_library_container(self):
        library = build_default_library("cmos90")
        assert len(library) == len(default_cell_set())
        assert "NAND2_X1" in library
        assert library.cells_matching("INV")
        assert "INV_X1" in library.summary()
        with pytest.raises(KeyError):
            library.cell("XOR9_X1")
        with pytest.raises(ValueError):
            library.add_cell(library["INV_X1"])

    def test_library_from_technology_object(self):
        library = build_default_library(cmos130(), name="custom")
        assert library.name == "custom"
