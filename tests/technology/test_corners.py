"""Process-corner derivation tests."""

import pytest

from repro.technology import (
    PROCESS_CORNERS,
    ProcessCorner,
    apply_corner,
    build_default_library,
    corner_names,
    get_corner,
    get_technology,
)
from repro.technology.process import NOMINAL_TEMPERATURE_C


@pytest.fixture(scope="module")
def base():
    return get_technology("cmos130")


class TestCornerLookup:
    def test_builtin_corners_present(self):
        assert set(corner_names()) == {"tt", "ff", "ss", "fs", "sf"}
        assert corner_names()[0] == "tt"

    def test_get_corner_by_name_and_object(self):
        assert get_corner("ff") is PROCESS_CORNERS["ff"]
        custom = ProcessCorner("hot_tt", temperature_c=100.0)
        assert get_corner(custom) is custom

    def test_unknown_corner_raises(self):
        with pytest.raises(KeyError, match="nosuch"):
            get_corner("nosuch")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "x", "nmos_speed": 0.0},
            {"name": "x", "supply_scale": -1.0},
        ],
    )
    def test_corner_validation(self, kwargs):
        with pytest.raises(ValueError):
            ProcessCorner(**kwargs)


class TestApplyCorner:
    def test_tt_is_identity_except_name(self, base):
        derived = apply_corner(base, "tt")
        assert derived.name == "cmos130@tt"
        assert derived.vdd == base.vdd
        assert derived.nmos == base.nmos
        assert derived.pmos == base.pmos
        assert derived.metal_layers == base.metal_layers

    def test_ff_is_faster_in_every_knob(self, base):
        ff = apply_corner(base, "ff")
        # Higher drive (corner scaling x cold-temperature mobility gain),
        # lower thresholds, higher supply.
        assert ff.nmos.kp > base.nmos.kp
        assert ff.pmos.kp > base.pmos.kp
        assert ff.nmos.vto < base.nmos.vto
        assert ff.pmos.vto < base.pmos.vto
        assert ff.vdd > base.vdd

    def test_ss_is_slower_where_it_matters(self, base):
        ss = apply_corner(base, "ss")
        # The hot slow corner: much lower mobility and a derated supply.
        # (The threshold *drops* with temperature, which is physical -- the
        # mobility loss dominates drive strength at the hot corner.)
        assert ss.nmos.kp < base.nmos.kp * 0.7
        assert ss.vdd < base.vdd

    def test_skewed_corners_move_devices_oppositely(self, base):
        fs = apply_corner(base, "fs")
        sf = apply_corner(base, "sf")
        assert fs.nmos.kp > base.nmos.kp and fs.pmos.kp < base.pmos.kp
        assert sf.nmos.kp < base.nmos.kp and sf.pmos.kp > base.pmos.kp
        # Same nominal supply/temperature: only the devices are skewed.
        assert fs.vdd == base.vdd == sf.vdd

    def test_temperature_override(self, base):
        hot = apply_corner(base, "tt", temperature_c=125.0)
        cold = apply_corner(base, "tt", temperature_c=NOMINAL_TEMPERATURE_C)
        assert hot.nmos.kp < cold.nmos.kp
        assert hot.nmos.vto < cold.nmos.vto
        # An overridden temperature must show in the name: name-keyed caches
        # may never mix temperature variants of the same corner.
        assert hot.name == "cmos130@tt@125C"
        assert cold.name == "cmos130@tt"

    def test_excessive_derating_rejected(self, base):
        # A threshold shift that drives the device into depletion must fail
        # loudly instead of building nonsense cells.
        corner = ProcessCorner("broken", nmos_vto_shift=-0.5)
        with pytest.raises(ValueError, match="enhancement"):
            apply_corner(base, corner)

    def test_corner_library_builds_and_names_stay_distinct(self, base):
        library = build_default_library(apply_corner(base, "ss"))
        assert library.technology.name == "cmos130@ss"
        assert "NAND2_X1" in library
