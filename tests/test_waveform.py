"""Unit and property tests for the Waveform container and glitch metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import ps
from repro.waveform import GlitchMetrics, Waveform, align_waveforms


class TestConstruction:
    def test_basic_construction(self):
        wf = Waveform([0.0, 1.0, 2.0], [0.0, 1.0, 0.5])
        assert len(wf) == 3
        assert wf.t_start == 0.0
        assert wf.t_stop == 2.0
        assert wf.duration == 2.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Waveform([0.0, 1.0], [0.0])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError):
            Waveform([0.0, 1.0, 1.0], [0.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            Waveform([0.0, 2.0, 1.0], [0.0, 1.0, 2.0])

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            Waveform([0.0], [1.0])

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(ValueError):
            Waveform([[0.0, 1.0]], [[0.0, 1.0]])

    def test_constant_constructor(self):
        wf = Waveform.constant(0.7, 0.0, 1e-9)
        assert wf.value_at(0.5e-9) == pytest.approx(0.7)

    def test_from_function(self):
        wf = Waveform.from_function(lambda t: 2.0 * t, 0.0, 1.0, n=11)
        assert wf.value_at(0.5) == pytest.approx(1.0)

    def test_triangular_glitch_shape(self):
        wf = Waveform.triangular_glitch(
            baseline=0.1, peak=0.5, t_start=ps(100), rise=ps(50), fall=ps(50), post=ps(100)
        )
        assert wf.value_at(ps(100)) == pytest.approx(0.1)
        assert wf.value_at(ps(150)) == pytest.approx(0.6)
        assert wf.value_at(ps(200)) == pytest.approx(0.1)

    def test_values_are_read_only(self):
        wf = Waveform([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            wf.values[0] = 5.0


class TestEvaluationAndArithmetic:
    def test_interpolation_and_clamping(self):
        wf = Waveform([0.0, 1.0], [0.0, 2.0])
        assert wf(0.5) == pytest.approx(1.0)
        assert wf(-1.0) == pytest.approx(0.0)
        assert wf(2.0) == pytest.approx(2.0)

    def test_vector_evaluation(self):
        wf = Waveform([0.0, 1.0], [0.0, 2.0])
        values = wf(np.array([0.0, 0.25, 0.5]))
        assert np.allclose(values, [0.0, 0.5, 1.0])

    def test_addition_of_waveforms_merges_time_axes(self):
        a = Waveform([0.0, 1.0], [1.0, 1.0])
        b = Waveform([0.5, 2.0], [2.0, 2.0])
        total = a + b
        assert total.value_at(0.75) == pytest.approx(3.0)

    def test_scalar_operations(self):
        wf = Waveform([0.0, 1.0], [1.0, 3.0])
        assert (wf * 2.0).value_at(1.0) == pytest.approx(6.0)
        assert (wf + 1.0).value_at(0.0) == pytest.approx(2.0)
        assert (-wf).value_at(1.0) == pytest.approx(-3.0)
        assert (5.0 - wf).value_at(1.0) == pytest.approx(2.0)

    def test_shift(self):
        wf = Waveform([0.0, 1.0], [0.0, 1.0]).shift(2.0)
        assert wf.t_start == pytest.approx(2.0)

    def test_clip_time(self):
        wf = Waveform([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 2.0, 3.0])
        clipped = wf.clip_time(0.5, 2.5)
        assert clipped.t_start == pytest.approx(0.5)
        assert clipped.t_stop == pytest.approx(2.5)
        assert clipped.value_at(1.0) == pytest.approx(1.0)

    def test_clip_time_invalid_range(self):
        wf = Waveform([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            wf.clip_time(1.0, 0.5)

    def test_equality_and_hash(self):
        a = Waveform([0.0, 1.0], [0.0, 1.0])
        b = Waveform([0.0, 1.0], [0.0, 1.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Waveform([0.0, 1.0], [0.0, 2.0])


class TestMetrics:
    def test_crossings(self):
        wf = Waveform([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        crossings = wf.crossings(0.5)
        assert len(crossings) == 2
        assert crossings[0] == pytest.approx(0.5)
        assert crossings[1] == pytest.approx(1.5)

    def test_glitch_metrics_triangle(self):
        # A triangle of height 0.6 V and base 200 ps on a 0.1 V baseline.
        wf = Waveform.triangular_glitch(
            baseline=0.1, peak=0.6, t_start=ps(100), rise=ps(100), fall=ps(100), post=ps(200)
        )
        metrics = wf.glitch_metrics()
        assert metrics.peak == pytest.approx(0.6, rel=1e-6)
        assert metrics.area == pytest.approx(0.5 * 0.6 * ps(200), rel=1e-6)
        assert metrics.width == pytest.approx(ps(100), rel=1e-6)  # FWHM of a triangle
        assert metrics.baseline == pytest.approx(0.1)
        assert metrics.area_v_ps == pytest.approx(metrics.area / 1e-12)
        assert metrics.width_ps == pytest.approx(metrics.width / 1e-12)

    def test_negative_glitch(self):
        wf = Waveform.triangular_glitch(
            baseline=1.2, peak=-0.5, t_start=ps(50), rise=ps(40), fall=ps(60), post=ps(100)
        )
        metrics = wf.glitch_metrics()
        assert metrics.peak == pytest.approx(-0.5, rel=1e-6)
        assert metrics.area > 0.0

    def test_flat_waveform_has_zero_metrics(self):
        wf = Waveform.constant(0.3, 0.0, 1e-9, n=10)
        metrics = wf.glitch_metrics()
        assert metrics.peak == 0.0
        assert metrics.area == 0.0
        assert metrics.width == 0.0

    def test_explicit_baseline(self):
        wf = Waveform([0.0, 1.0, 2.0], [0.5, 1.0, 0.5])
        metrics = wf.glitch_metrics(baseline=0.0)
        assert metrics.peak == pytest.approx(1.0)

    def test_metrics_as_dict(self):
        wf = Waveform.triangular_glitch(0.0, 1.0, ps(10), ps(10), ps(10))
        data = wf.glitch_metrics().as_dict()
        assert set(data) == {"peak_v", "area_v_ps", "width_ps", "peak_time_s", "baseline_v"}

    def test_rms_and_max_difference(self):
        a = Waveform([0.0, 1.0], [0.0, 0.0])
        b = Waveform([0.0, 1.0], [1.0, 1.0])
        assert a.rms_difference(b) == pytest.approx(1.0)
        assert a.max_difference(b) == pytest.approx(1.0)

    def test_difference_requires_overlap(self):
        a = Waveform([0.0, 1.0], [0.0, 0.0])
        b = Waveform([2.0, 3.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            a.rms_difference(b)

    def test_align_waveforms(self):
        a = Waveform([0.0, 1.0], [0.0, 1.0])
        b = Waveform([0.5, 2.0], [1.0, 2.0])
        times, values = align_waveforms([a, b], n=16)
        assert times[0] == pytest.approx(0.0)
        assert times[-1] == pytest.approx(2.0)
        assert len(values) == 2

    def test_align_requires_waveforms(self):
        with pytest.raises(ValueError):
            align_waveforms([])


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

@st.composite
def waveform_strategy(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    deltas = draw(
        st.lists(st.floats(min_value=1e-12, max_value=1e-9), min_size=n - 1, max_size=n - 1)
    )
    times = np.concatenate([[0.0], np.cumsum(deltas)])
    values = draw(
        st.lists(
            st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    return Waveform(times, values)


@given(waveform_strategy())
@settings(max_examples=50, deadline=None)
def test_property_peak_bounded_by_range(wf):
    metrics = wf.glitch_metrics()
    span = wf.max() - wf.min()
    assert abs(metrics.peak) <= span + 1e-12


@given(waveform_strategy())
@settings(max_examples=50, deadline=None)
def test_property_area_and_width_non_negative(wf):
    metrics = wf.glitch_metrics()
    assert metrics.area >= 0.0
    assert metrics.width >= 0.0
    assert metrics.width <= wf.duration + 1e-15


@given(waveform_strategy(), st.floats(min_value=-2.0, max_value=2.0, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_property_adding_constant_shifts_baseline_not_peak(wf, offset):
    base = wf.glitch_metrics()
    shifted = (wf + offset).glitch_metrics()
    assert abs(shifted.peak) == pytest.approx(abs(base.peak), rel=1e-9, abs=1e-12)
    # The peak's *sign* is only well-defined when the positive and negative
    # excursions are not tied: adding a float offset perturbs an exact tie
    # by an ulp and may legitimately flip which extreme wins the argmax.
    deviation = wf.values - wf.values[0]
    tie_margin = abs(float(deviation.max()) + float(deviation.min()))
    if tie_margin > 1e-9:
        assert np.sign(shifted.peak) == np.sign(base.peak)
    assert shifted.baseline == pytest.approx(base.baseline + offset, rel=1e-9, abs=1e-12)


@given(waveform_strategy())
@settings(max_examples=50, deadline=None)
def test_property_resample_preserves_endpoint_values(wf):
    resampled = wf.resample_uniform(64)
    assert resampled.value_at(wf.t_start) == pytest.approx(wf.values[0], abs=1e-9)
    assert resampled.value_at(wf.t_stop) == pytest.approx(wf.values[-1], abs=1e-9)


@given(waveform_strategy(), waveform_strategy())
@settings(max_examples=30, deadline=None)
def test_property_addition_commutes(a, b):
    left = a + b
    right = b + a
    probe = np.linspace(min(a.t_start, b.t_start), max(a.t_stop, b.t_stop), 17)
    assert np.allclose(left(probe), right(probe), atol=1e-12)
