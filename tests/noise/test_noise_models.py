"""Tests for the noise-cluster models: engine, macromodel, baselines, golden."""

import numpy as np
import pytest

from repro.characterization import LibraryCharacterizer
from repro.circuit import Circuit, PulseWaveform, transient
from repro.golden import GoldenClusterAnalysis, build_golden_cluster_circuit
from repro.interconnect import ParallelBusGeometry
from repro.noise import (
    AggressorSpec,
    ClusterModelBuilder,
    DedicatedNoiseEngine,
    InputGlitchSpec,
    LinearSuperpositionAnalysis,
    MacromodelAnalysis,
    MacromodelNetwork,
    NoiseClusterSpec,
    TableVCCS,
    VictimSpec,
    ZolotovIterativeAnalysis,
    check_against_nrc,
    compare_results,
    compute_injected_noise,
    compute_per_aggressor_noise,
    victim_input_waveform,
)
from repro.technology import build_default_library
from repro.units import fF, ps


@pytest.fixture(scope="module")
def library():
    return build_default_library("cmos130")


@pytest.fixture(scope="module")
def characterizer(library):
    return LibraryCharacterizer(library, vccs_grid=13)


@pytest.fixture(scope="module")
def small_cluster():
    """A reduced-size Table-1-like cluster that keeps test runtimes low."""
    geometry = ParallelBusGeometry.two_parallel_wires(length_um=300.0, layer_index=4)
    return NoiseClusterSpec(
        victim=VictimSpec(
            net="victim",
            driver_cell="NAND2_X1",
            output_high=False,
            input_glitch=InputGlitchSpec(height=0.9, width=ps(200), start_time=ps(120)),
            receiver_cell="INV_X1",
        ),
        aggressors=[
            AggressorSpec(
                net="aggressor",
                driver_cell="INV_X2",
                rising=True,
                input_transition=ps(40),
                switch_time=ps(150),
            )
        ],
        geometry=geometry,
        num_segments=6,
        name="test_cluster",
    )


# ---------------------------------------------------------------------------
# Cluster specification
# ---------------------------------------------------------------------------

class TestClusterSpec:
    def test_describe_and_window(self, small_cluster):
        text = small_cluster.describe()
        assert "victim" in text and "aggressor" in text
        t_stop, dt = small_cluster.simulation_window()
        assert t_stop > ps(400)
        assert dt == ps(1)

    def test_validation(self):
        geometry = ParallelBusGeometry.two_parallel_wires(length_um=100.0)
        with pytest.raises(ValueError):
            NoiseClusterSpec(
                victim=VictimSpec(net="nosuch"),
                aggressors=[AggressorSpec(net="aggressor")],
                geometry=geometry,
            )
        with pytest.raises(ValueError):
            NoiseClusterSpec(
                victim=VictimSpec(net="victim"),
                aggressors=[AggressorSpec(net="victim")],
                geometry=geometry,
            )
        with pytest.raises(ValueError):
            NoiseClusterSpec(
                victim=VictimSpec(net="victim"),
                aggressors=[AggressorSpec(net="aggressor"), AggressorSpec(net="aggressor")],
                geometry=geometry,
            )
        with pytest.raises(ValueError):
            InputGlitchSpec(height=-0.1, width=ps(100), start_time=0.0)
        with pytest.raises(ValueError):
            InputGlitchSpec(height=0.5, width=0.0, start_time=0.0)

    def test_victim_arc_selection(self, library):
        victim = VictimSpec(net="victim", driver_cell="NAND2_X1", output_high=False, noisy_input_pin="B")
        arc = victim.arc(library["NAND2_X1"])
        assert arc.input_pin == "B"
        with pytest.raises(ValueError):
            VictimSpec(net="victim", driver_cell="NAND2_X1", noisy_input_pin="Q").arc(library["NAND2_X1"])

    def test_aggressor_lookup(self, small_cluster):
        assert small_cluster.aggressor("aggressor").driver_cell == "INV_X2"
        with pytest.raises(KeyError):
            small_cluster.aggressor("nosuch")
        assert small_cluster.num_aggressors == 1


# ---------------------------------------------------------------------------
# The dedicated engine
# ---------------------------------------------------------------------------

class TestDedicatedEngine:
    def test_linear_rc_matches_general_simulator(self):
        """The dedicated engine and the MNA simulator agree on a driven RC net."""
        r, c = 500.0, fF(50)
        source = PulseWaveform(0.0, 1.0, delay=ps(50), rise=ps(20))

        network = MacromodelNetwork("rc")
        network.add_conductance("drv", "0", 1.0 / r)
        network.add_current_source("drv", lambda t: source(t) / r)
        network.add_capacitance("drv", "0", c)
        engine = DedicatedNoiseEngine(network)
        waveform_engine = engine.simulate(ps(500), ps(1))["drv"]

        circuit = Circuit("rc")
        circuit.add_voltage_source("V1", "in", "0", source)
        circuit.add_resistor("R1", "in", "drv", r)
        circuit.add_capacitor("C1", "drv", "0", c)
        waveform_sim = transient(circuit, t_stop=ps(500), dt=ps(1))["drv"]

        assert waveform_engine.max_difference(waveform_sim) < 0.01

    def test_nonlinear_vccs_matches_general_simulator(self, library, characterizer):
        """The table VCCS gives the same waveform in both solvers."""
        cell = library["NAND2_X1"]
        arc = cell.noise_arcs(output_high=False)[0]
        surface = characterizer.load_surface("NAND2_X1", arc)
        waveform_in = victim_input_waveform(1.2, arc.glitch_rising,
                                            InputGlitchSpec(0.9, ps(200), ps(100)))
        vccs = TableVCCS(surface, waveform_in)

        load = fF(30)
        network = MacromodelNetwork("vccs")
        network.add_capacitance("out", "0", load)
        network.add_nonlinear_source("out", vccs.current)
        engine_waveform = DedicatedNoiseEngine(network).simulate(ps(500), ps(1))["out"]

        circuit = Circuit("vccs")
        circuit.add_capacitor("CL", "out", "0", load)
        vccs.attach_to_circuit(circuit, "VIC", "out")
        simulator_waveform = transient(circuit, t_stop=ps(500), dt=ps(1))["out"]

        assert engine_waveform.max_difference(simulator_waveform) < 0.02

    def test_thevenin_norton_equivalence(self, library, characterizer):
        model = characterizer.thevenin_driver("INV_X1", load_capacitance=fF(30))
        network = MacromodelNetwork("thev")
        network.add_thevenin_driver("out", model, extra_delay=ps(100))
        network.add_capacitance("out", "0", fF(30))
        waveform = DedicatedNoiseEngine(network).simulate(ps(800), ps(1))["out"]
        assert waveform.values[-1] == pytest.approx(library.technology.vdd, rel=0.02)

    def test_engine_statistics_and_validation(self):
        network = MacromodelNetwork("v")
        network.add_conductance("a", "0", 1e-3)
        network.add_capacitance("a", "0", fF(10))
        engine = DedicatedNoiseEngine(network)
        engine.simulate(ps(100), ps(1))
        assert engine.statistics.num_time_points == 100
        assert engine.statistics.runtime_seconds > 0.0
        with pytest.raises(ValueError):
            engine.simulate(0.0, ps(1))
        with pytest.raises(ValueError):
            network.add_conductance("a", "0", -1.0)
        with pytest.raises(ValueError):
            network.add_resistance("a", "0", 0.0)
        with pytest.raises(ValueError):
            network.add_capacitance("a", "0", -1e-15)


class TestEngineFactorizationSharing:
    @staticmethod
    def _network(name="shared"):
        source = PulseWaveform(0.0, 1.0, delay=ps(50), rise=ps(20))
        network = MacromodelNetwork(name)
        network.add_conductance("drv", "0", 1.0 / 500.0)
        network.add_current_source("drv", lambda t: source(t) / 500.0)
        network.add_capacitance("drv", "0", fF(50))
        return network

    def test_identical_networks_share_one_factorization(self):
        from repro.circuit.batched import FactorizationCache

        cache = FactorizationCache()
        first = DedicatedNoiseEngine(self._network(), solver_cache=cache)
        waveform_first = first.simulate(ps(300), ps(1))["drv"]
        assert first.statistics.matrix_factorizations >= 1
        assert first.statistics.factorizations_saved == 0

        second = DedicatedNoiseEngine(self._network("shared2"), solver_cache=cache)
        waveform_second = second.simulate(ps(300), ps(1))["drv"]
        # Same matrices, same dt: everything comes from the shared cache,
        # and reuse of a bit-identical factorization cannot move the result.
        assert second.statistics.matrix_factorizations == 0
        assert second.statistics.factorizations_saved >= 1
        assert waveform_first.max_difference(waveform_second) == 0.0

    def test_different_values_do_not_collide(self):
        from repro.circuit.batched import FactorizationCache

        cache = FactorizationCache()
        DedicatedNoiseEngine(self._network(), solver_cache=cache).simulate(
            ps(100), ps(1)
        )
        other = self._network("other")
        other.add_conductance("drv", "0", 1e-4)  # different matrix values
        engine = DedicatedNoiseEngine(other, solver_cache=cache)
        engine.simulate(ps(100), ps(1))
        assert engine.statistics.matrix_factorizations >= 1


# ---------------------------------------------------------------------------
# Injected-noise helpers
# ---------------------------------------------------------------------------

class TestInjectedNoise:
    def test_injected_noise_positive_for_rising_aggressor(self, library, characterizer, small_cluster):
        builder = ClusterModelBuilder(library, small_cluster, characterizer=characterizer)
        waveform, runtime = compute_injected_noise(builder, dt=ps(2))
        metrics = waveform.glitch_metrics(baseline=0.0)
        assert metrics.peak > 0.02
        assert runtime > 0.0

    def test_per_aggressor_decomposition_sums_to_total(self, library, characterizer, small_cluster):
        builder = ClusterModelBuilder(library, small_cluster, characterizer=characterizer)
        total, _ = compute_injected_noise(builder, dt=ps(2))
        parts = compute_per_aggressor_noise(builder, dt=ps(2))
        assert set(parts) == {"aggressor"}
        # One aggressor: the decomposition must equal the total.
        assert parts["aggressor"].max_difference(total) < 0.01


# ---------------------------------------------------------------------------
# Full method comparison (integration)
# ---------------------------------------------------------------------------

class TestMethodComparison:
    @pytest.fixture(scope="class")
    def results(self, library, small_cluster):
        from repro.api import AnalysisConfig, NoiseAnalysisSession

        session = NoiseAnalysisSession(
            library, AnalysisConfig(vccs_grid=13, check_nrc=False)
        )
        report = session.analyze(
            small_cluster,
            methods=("golden", "macromodel", "superposition", "iterative_thevenin"),
            dt=ps(2),
        )
        return session, report

    def test_macromodel_tracks_golden_within_a_few_percent(self, results):
        res = results[1].results
        comparison = compare_results(res["golden"], res["macromodel"])
        assert abs(comparison["peak_error_pct"]) < 8.0
        assert abs(comparison["area_error_pct"]) < 10.0

    def test_superposition_underestimates_substantially(self, results):
        res = results[1].results
        comparison = compare_results(res["golden"], res["superposition"])
        assert comparison["peak_error_pct"] < -15.0
        assert comparison["area_error_pct"] < -15.0

    def test_iterative_thevenin_between_superposition_and_macromodel(self, results):
        res = results[1].results
        sup_err = abs(compare_results(res["golden"], res["superposition"])["peak_error_pct"])
        zol_err = abs(compare_results(res["golden"], res["iterative_thevenin"])["peak_error_pct"])
        assert zol_err < sup_err

    def test_macromodel_is_faster_than_golden(self, results):
        res = results[1].results
        assert res["macromodel"].runtime_seconds < res["golden"].runtime_seconds

    def test_comparison_table_format(self, results):
        _, report = results
        table = report.comparison_table()
        assert "golden" in table and "macromodel" in table
        with pytest.raises(KeyError):
            report.comparison_table(reference="nosuch")

    def test_result_summaries(self, results):
        res = results[1].results
        for result in res.values():
            text = result.summary()
            assert "peak" in text and "area" in text

    def test_nrc_check(self, results, library, small_cluster):
        session, report = results
        nrc = session.characterizer.noise_rejection_curve(
            small_cluster.victim.receiver_cell, widths=[ps(100), ps(300)]
        )
        check = check_against_nrc(report.results["macromodel"], nrc)
        assert check.failure_height > 0.0
        assert isinstance(check.fails, bool)
        assert "NRC" in check.describe() or "glitch" in check.describe()

    def test_unknown_method_rejected(self, results, small_cluster):
        session, _ = results
        with pytest.raises(ValueError):
            session.analyze(small_cluster, methods=("spice",))


class TestMacromodelOptions:
    def test_full_reduction_close_to_coupled_pi(self, library, characterizer, small_cluster):
        pi = MacromodelAnalysis(library, characterizer=characterizer, reduction="coupled_pi")
        full = MacromodelAnalysis(library, characterizer=characterizer, reduction="full")
        result_pi = pi.analyze(small_cluster, dt=ps(2))
        result_full = full.analyze(small_cluster, dt=ps(2))
        assert result_pi.peak == pytest.approx(result_full.peak, rel=0.10)
        assert result_pi.details["num_unknowns"] < result_full.details["num_unknowns"]

    def test_invalid_reduction_rejected(self, library, characterizer, small_cluster):
        builder = ClusterModelBuilder(library, small_cluster, characterizer=characterizer)
        with pytest.raises(ValueError):
            builder.wiring_network("awe42")

    def test_superposition_without_glitch_is_injected_only(self, library, characterizer, small_cluster):
        spec = NoiseClusterSpec(
            victim=VictimSpec(net="victim", driver_cell="NAND2_X1", output_high=False),
            aggressors=small_cluster.aggressors,
            geometry=small_cluster.geometry,
            num_segments=small_cluster.num_segments,
            name="no_glitch",
        )
        analysis = LinearSuperpositionAnalysis(library, characterizer=characterizer)
        result = analysis.analyze(spec, dt=ps(2))
        assert result.details["propagated_metrics"] is None
        assert result.peak > 0.0

    def test_zolotov_iterates(self, library, characterizer, small_cluster):
        analysis = ZolotovIterativeAnalysis(library, characterizer=characterizer, max_iterations=3)
        result = analysis.analyze(small_cluster, dt=ps(2))
        assert result.details["iterations"] >= 1
        assert result.details["final_resistance"] > 0.0


class TestGoldenCircuit:
    def test_golden_circuit_structure(self, library, small_cluster):
        circuit = build_golden_cluster_circuit(library, small_cluster)
        from repro.circuit import MOSFET

        fets = circuit.elements_of_type(MOSFET)
        # victim NAND2 (4) + aggressor INV (2) + two receiver INVs (2+2)
        assert len(fets) == 10
        assert circuit.has_node("victim:0")
        assert circuit.has_node("aggressor:0")
        assert circuit.has_node("vic_in")

    def test_golden_quiet_cluster_stays_quiet(self, library):
        """With no aggressor switching and no glitch, the victim stays at 0 V."""
        geometry = ParallelBusGeometry.two_parallel_wires(length_um=200.0)
        spec = NoiseClusterSpec(
            victim=VictimSpec(net="victim", driver_cell="NAND2_X1", output_high=False),
            aggressors=[AggressorSpec(net="aggressor", driver_cell="INV_X1", switch_time=ps(10000))],
            geometry=geometry,
            num_segments=4,
            name="quiet",
        )
        result = GoldenClusterAnalysis(library).analyze(spec, dt=ps(2), t_stop=ps(300))
        assert abs(result.peak) < 0.02
