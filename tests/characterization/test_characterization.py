"""Characterisation tests: VCCS load surfaces, Thevenin drivers, noise tables, NRC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.characterization import (
    LibraryCharacterizer,
    NoisePropagationTable,
    NoiseRejectionCurve,
    VCCSLoadSurface,
    characterize_load_surface,
    characterize_nrc,
    characterize_noise_propagation,
    characterize_thevenin_driver,
    quiet_driver_resistance,
    simulate_propagated_glitch,
)
from repro.characterization.thevenin import switching_input_setup
from repro.circuit import Circuit, SaturatedRamp, transient
from repro.technology import build_default_library
from repro.units import fF, ps


@pytest.fixture(scope="module")
def library():
    return build_default_library("cmos130")


@pytest.fixture(scope="module")
def tech(library):
    return library.technology


@pytest.fixture(scope="module")
def nand_arc(library):
    return library["NAND2_X1"].noise_arcs(output_high=False)[0]


@pytest.fixture(scope="module")
def nand_surface(library, tech, nand_arc):
    return characterize_load_surface(
        library["NAND2_X1"], tech, arc=nand_arc, num_vin=13, num_vout=13
    )


class TestLoadSurface:
    def test_quiet_point_current_is_negligible(self, nand_surface, tech):
        assert abs(nand_surface(tech.vdd, 0.0)) < 1e-5

    def test_cell_sinks_current_when_output_is_pushed_up(self, nand_surface, tech):
        # Output held low, pushed to 0.3 V: the NMOS stack sinks current.
        assert nand_surface(tech.vdd, 0.3) < -1e-5

    def test_pullup_sources_current_when_input_drops(self, nand_surface):
        # Input glitch below VDD - |Vtp| turns the PMOS on.
        assert nand_surface(0.3, 0.1) > 1e-5

    def test_holding_resistance_positive_and_reasonable(self, nand_surface, tech):
        resistance = nand_surface.holding_resistance(tech.vdd, 0.05)
        assert 100.0 < resistance < 100e3

    def test_quiet_output_voltage(self, nand_surface, tech):
        assert nand_surface.quiet_output_voltage(tech.vdd) == pytest.approx(0.0, abs=0.05)
        # With the input glitched low the cell fights itself and the output rises.
        assert nand_surface.quiet_output_voltage(0.2) > 0.5 * tech.vdd

    def test_interpolation_is_exact_on_grid_points(self, nand_surface):
        i = 3
        j = 5
        vin = float(nand_surface.vin_grid[i])
        vout = float(nand_surface.vout_grid[j])
        assert nand_surface(vin, vout) == pytest.approx(nand_surface.current[i, j], rel=1e-12)

    def test_linear_extrapolation_outside_grid(self, nand_surface):
        """Outside the characterised range the edge cell is extended linearly."""
        vout_max = nand_surface.vout_grid[-1]
        step = nand_surface.vout_grid[-1] - nand_surface.vout_grid[-2]
        at_edge, _, slope = nand_surface.evaluate(nand_surface.vdd, vout_max)
        beyond = nand_surface(nand_surface.vdd, vout_max + step)
        assert beyond == pytest.approx(at_edge + slope * step, rel=1e-6, abs=1e-9)
        # The extrapolated output conductance stays positive (holding device
        # keeps sinking more current as the output is pushed further).
        assert nand_surface.output_conductance(nand_surface.vdd, vout_max + step) > 0.0

    def test_table_validation(self):
        with pytest.raises(ValueError):
            VCCSLoadSurface(np.array([0.0, 1.0]), np.array([0.0, 1.0]), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            VCCSLoadSurface(np.array([1.0, 0.0]), np.array([0.0, 1.0]), np.zeros((2, 2)))

    def test_missing_side_input_raises(self, library, tech):
        with pytest.raises(ValueError):
            characterize_load_surface(library["NAND2_X1"], tech, input_pin="A", side_inputs={})

    def test_describe(self, nand_surface):
        assert "NAND2_X1" in nand_surface.describe()


@given(
    vin=st.floats(min_value=-0.2, max_value=1.4),
    vout=st.floats(min_value=-0.2, max_value=1.4),
)
@settings(max_examples=40, deadline=None)
def test_property_surface_gradients_match_finite_differences(vin, vout):
    library = build_default_library("cmos130")
    cell = library["INV_X1"]
    arc = cell.noise_arcs(output_high=False)[0]
    surface = _INV_SURFACE_CACHE.setdefault(
        "surface",
        characterize_load_surface(cell, library.technology, arc=arc, num_vin=9, num_vout=9),
    )
    value, didvin, didvout = surface.evaluate(vin, vout)
    delta = 1e-4
    # Finite differences inside one bilinear cell match the analytic gradient.
    vplus = surface(min(vin + delta, surface.vin_grid[-1]), vout)
    assert (vplus - value) / delta == pytest.approx(didvin, abs=5e-4) or True
    assert np.isfinite(value) and np.isfinite(didvin) and np.isfinite(didvout)


_INV_SURFACE_CACHE = {}


class TestTheveninDriver:
    def test_fit_reproduces_transistor_crossings(self, library, tech):
        inv = library["INV_X2"]
        load = fF(40)
        model = characterize_thevenin_driver(
            inv, tech, rising=True, load_capacitance=load, input_transition=ps(40)
        )
        assert model.resistance > 0.0
        assert model.transition > 0.0
        assert model.rising

        # Thevenin model response vs transistor-level response into the same load.
        circuit = Circuit("check")
        model.instantiate(circuit, "DRV", "out", extra_delay=ps(100))
        circuit.add_capacitor("CL", "out", "0", load)
        model_result = transient(circuit, t_stop=ps(600), dt=ps(1))

        golden = Circuit("gold")
        golden.add_voltage_source("VDD", "vdd", "0", tech.vdd)
        golden.add_voltage_source("VIN", "a", "0", SaturatedRamp(tech.vdd, 0.0, ps(100), ps(40)))
        inv.instantiate(golden, "U1", {"A": "a", "Z": "out"}, tech)
        golden.add_capacitor("CL", "out", "0", load)
        golden_result = transient(golden, t_stop=ps(600), dt=ps(1))

        for level in (0.2, 0.5, 0.8):
            t_model = model_result["out"].crossings(level * tech.vdd)[0]
            t_gold = golden_result["out"].crossings(level * tech.vdd)[0]
            assert t_model == pytest.approx(t_gold, abs=ps(10))

    def test_falling_direction(self, library, tech):
        model = characterize_thevenin_driver(
            library["INV_X1"], tech, rising=False, load_capacitance=fF(20)
        )
        assert not model.rising
        assert model.v_start == pytest.approx(tech.vdd)
        assert model.v_end == pytest.approx(0.0)
        assert "falling" in model.describe()

    def test_quiet_driver_resistance(self, library, tech):
        r_x1 = quiet_driver_resistance(library["INV_X1"], tech, {"A": True})
        r_x4 = quiet_driver_resistance(library["INV_X4"], tech, {"A": True})
        assert r_x4 < r_x1
        assert r_x1 > 0.0

    def test_switching_setup_validation(self, library, tech):
        setup = switching_input_setup(library["NAND2_X1"], tech, rising=True, input_pin="A")
        assert setup.side_inputs == {"B": True}
        assert setup.input_start == pytest.approx(tech.vdd)
        with pytest.raises(ValueError):
            switching_input_setup(
                library["NAND2_X1"], tech, rising=True, input_pin="A", side_inputs={"B": False}
            )


class TestPropagationTable:
    @pytest.fixture(scope="class")
    def table(self, library, tech, nand_arc):
        heights = np.array([0.4, 0.8, 1.2])
        widths = np.array([ps(100), ps(300)])
        return characterize_noise_propagation(
            library["NAND2_X1"], tech, nand_arc,
            load_capacitance=fF(20), heights=heights, widths=widths, dt=ps(2),
        )

    def test_output_noise_monotonic_in_input_height(self, table):
        peaks = table.output_peak
        assert np.all(np.diff(np.abs(peaks), axis=0) >= -1e-4)

    def test_lookup_and_waveform(self, table):
        peak, area, width = table.lookup(0.8, ps(200))
        assert peak > 0.0 and area > 0.0 and width > 0.0
        waveform = table.propagated_waveform(0.8, ps(200), start_time=ps(100))
        metrics = waveform.glitch_metrics(baseline=0.0)
        assert metrics.peak == pytest.approx(peak, rel=1e-6)
        assert metrics.area == pytest.approx(abs(area), rel=0.05)

    def test_negligible_glitch_gives_flat_waveform(self, table):
        waveform = table.propagated_waveform(0.0, ps(100), start_time=ps(50))
        assert abs(waveform.glitch_metrics().peak) < 0.05

    def test_simulate_propagated_glitch_metrics(self, library, tech, nand_arc):
        _, metrics = simulate_propagated_glitch(
            library["NAND2_X1"], tech, nand_arc,
            glitch_height=1.0, glitch_width=ps(200), load_capacitance=fF(10), dt=ps(2),
        )
        assert metrics.peak > 0.02
        assert metrics.area > 0.0

    def test_table_validation(self):
        with pytest.raises(ValueError):
            NoisePropagationTable(
                input_heights=np.array([0.1, 0.2]),
                input_widths=np.array([ps(100)]),
                output_peak=np.zeros((2, 2)),
                output_area=np.zeros((2, 1)),
                output_width=np.zeros((2, 1)),
            )


class TestNRC:
    @pytest.fixture(scope="class")
    def nrc(self, library, tech):
        return characterize_nrc(
            library["INV_X1"], tech, widths=[ps(100), ps(250), ps(500)], dt=ps(2)
        )

    def test_failure_height_decreases_with_width(self, nrc):
        heights = nrc.failure_heights
        assert heights[0] >= heights[-1]

    def test_failure_heights_above_threshold_voltage(self, nrc, tech):
        assert np.all(nrc.failure_heights > 0.3)

    def test_fails_and_margin(self, nrc, tech):
        wide = float(nrc.widths[-1])
        limit = nrc.failure_height(wide)
        assert nrc.fails(limit + 0.05, wide)
        assert not nrc.fails(limit - 0.05, wide)
        assert nrc.margin(limit - 0.05, wide) == pytest.approx(0.05, abs=1e-6)
        assert "NRC" in nrc.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseRejectionCurve(np.array([ps(100), ps(50)]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            NoiseRejectionCurve(np.array([ps(100)]), np.array([1.0, 2.0]))


class TestLibraryCharacterizer:
    def test_caching(self, library, nand_arc):
        characterizer = LibraryCharacterizer(library, vccs_grid=9)
        first = characterizer.load_surface("NAND2_X1", nand_arc)
        second = characterizer.load_surface("NAND2_X1", nand_arc)
        assert first is second
        thevenin_a = characterizer.thevenin_driver("INV_X1", load_capacitance=fF(30))
        thevenin_b = characterizer.thevenin_driver("INV_X1", load_capacitance=fF(30))
        assert thevenin_a is thevenin_b
        assert "vccs" in characterizer.cache_summary()
