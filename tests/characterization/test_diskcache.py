"""Persistent characterisation cache: accounting, corruption, cross-process."""

import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.characterization import (
    LibraryCharacterizer,
    PersistentCharacterizationCache,
    default_cache_dir,
    technology_fingerprint,
)
from repro.characterization.diskcache import MISSING, CACHE_DIR_ENV
from repro.technology import apply_corner, build_default_library, get_technology

GRID = 5  # smallest useful VCCS grid: keeps characterisation runs cheap


@pytest.fixture()
def library():
    return build_default_library("cmos130")


@pytest.fixture()
def arc(library):
    return library.cell("NAND2_X1").noise_arcs(output_high=False)[0]


def make_characterizer(tmp_path, library=None):
    return LibraryCharacterizer(
        library if library is not None else build_default_library("cmos130"),
        vccs_grid=GRID,
        disk_cache=PersistentCharacterizationCache(tmp_path),
    )


class TestDefaultLocation:
    def test_env_var_overrides(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_falls_back_to_user_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert str(default_cache_dir()).endswith(".cache/repro")


class TestColdWarmAccounting:
    def test_cold_run_stores_then_warm_run_hits(self, tmp_path, library, arc):
        cold = make_characterizer(tmp_path, library)
        surface = cold.load_surface("NAND2_X1", arc)
        thevenin = cold.thevenin_driver("INV_X2", rising=True)
        snap = cold.disk_cache.stats.snapshot()
        assert snap["misses"] == 2 and snap["stores"] == 2 and snap["hits"] == 0
        assert cold.stats.miss_count() == 2  # both actually characterised

        # A fresh characteriser on a fresh library simulates a new process.
        warm = make_characterizer(tmp_path)
        surface2 = warm.load_surface("NAND2_X1", arc)
        thevenin2 = warm.thevenin_driver("INV_X2", rising=True)
        snap = warm.disk_cache.stats.snapshot()
        assert snap["hits"] == 2 and snap["misses"] == 0 and snap["stores"] == 0
        # Disk hits are neither memory hits nor expensive recomputes.
        assert warm.stats.miss_count() == 0
        assert warm.stats.disk_hit_count() == 2

        np.testing.assert_array_equal(surface.current, surface2.current)
        np.testing.assert_array_equal(surface.vin_grid, surface2.vin_grid)
        assert surface.side_inputs == surface2.side_inputs
        assert thevenin == thevenin2  # frozen dataclass: full field equality

        # Second access in the same characteriser stays in memory.
        warm.load_surface("NAND2_X1", arc)
        assert warm.disk_cache.stats.snapshot()["hits"] == 2
        assert warm.stats.hit_count("vccs") == 1

    def test_distinct_technologies_do_not_share_entries(self, tmp_path, arc):
        base = make_characterizer(tmp_path)
        base.load_surface("NAND2_X1", arc)
        corner_lib = build_default_library(apply_corner(get_technology("cmos130"), "ss"))
        corner = make_characterizer(tmp_path, corner_lib)
        corner_arc = corner_lib.cell("NAND2_X1").noise_arcs(output_high=False)[0]
        surface = corner.load_surface("NAND2_X1", corner_arc)
        # Same key tuple, different fingerprint -> a miss, then a store.
        snap = corner.disk_cache.stats.snapshot()
        assert snap["misses"] == 1 and snap["stores"] == 1
        assert len(corner.disk_cache) == 2
        assert surface.vdd == pytest.approx(1.2 * 0.9)

    def test_fingerprint_tracks_parameters_not_name(self):
        base = get_technology("cmos130")
        assert technology_fingerprint(base) == technology_fingerprint(
            get_technology("cmos130")
        )
        assert technology_fingerprint(base) != technology_fingerprint(
            apply_corner(base, "ss")
        )

    def test_same_named_cells_with_different_definitions_never_share(
        self, tmp_path, library, arc
    ):
        """The entry key covers the cell definition, not just its name."""
        default = make_characterizer(tmp_path, library)
        surface = default.load_surface("NAND2_X1", arc)

        # A custom library redefining NAND2_X1 at double strength in the
        # *same* technology must not read the default library's entry back.
        from repro.technology import CellLibrary, StandardCell
        from repro.technology.network import Leaf

        custom_lib = CellLibrary(
            "custom",
            get_technology("cmos130"),
            [
                StandardCell(
                    "NAND2_X1", Leaf("A") & Leaf("B"), strength=2.0,
                    description="double-strength impostor",
                )
            ],
        )
        custom = make_characterizer(tmp_path, custom_lib)
        custom_arc = custom_lib.cell("NAND2_X1").noise_arcs(output_high=False)[0]
        impostor = custom.load_surface("NAND2_X1", custom_arc)
        snap = custom.disk_cache.stats.snapshot()
        assert snap["hits"] == 0 and snap["misses"] == 1 and snap["stores"] == 1
        # Double strength -> roughly double the holding current.
        assert np.abs(impostor.current).max() > 1.5 * np.abs(surface.current).max()


class TestCorruptionRecovery:
    def test_truncated_entry_recomputes_and_heals(self, tmp_path, library, arc):
        cold = make_characterizer(tmp_path, library)
        surface = cold.load_surface("NAND2_X1", arc)
        entry = next(iter(tmp_path.glob("vccs-*.npz")))
        entry.write_bytes(entry.read_bytes()[:50])  # torn write / bad copy

        warm = make_characterizer(tmp_path)
        healed = warm.load_surface("NAND2_X1", arc)
        snap = warm.disk_cache.stats.snapshot()
        assert snap["corrupt_dropped"] == 1
        assert snap["misses"] == 1 and snap["stores"] == 1  # recomputed + re-stored
        assert warm.stats.miss_count("vccs") == 1
        np.testing.assert_array_equal(surface.current, healed.current)

        # The healed entry is readable again.
        third = make_characterizer(tmp_path)
        third.load_surface("NAND2_X1", arc)
        assert third.disk_cache.stats.snapshot()["hits"] == 1

    def test_garbage_json_metadata_is_dropped(self, tmp_path, library, arc):
        cold = make_characterizer(tmp_path, library)
        cold.load_surface("NAND2_X1", arc)
        entry = next(iter(tmp_path.glob("vccs-*.npz")))
        np.savez(entry, __meta__="not json{", junk=np.zeros(3))

        warm = make_characterizer(tmp_path)
        warm.load_surface("NAND2_X1", arc)
        assert warm.disk_cache.stats.snapshot()["corrupt_dropped"] == 1

    def test_get_returns_missing_for_absent_key(self, tmp_path):
        cache = PersistentCharacterizationCache(tmp_path)
        assert cache.get("fp", ("vccs", "nothing")) is MISSING

    def test_unknown_value_types_are_skipped(self, tmp_path):
        cache = PersistentCharacterizationCache(tmp_path)
        assert cache.put("fp", ("vccs", "x"), {"not": "a model"}) is False
        assert len(cache) == 0

    def test_orphaned_tmp_files_are_swept(self, tmp_path, library, arc):
        stale = tmp_path / ".vccs-deadbeef-x.tmp"
        stale.write_bytes(b"half-written")
        two_hours_ago = stale.stat().st_mtime - 7200
        os.utime(stale, (two_hours_ago, two_hours_ago))
        fresh = tmp_path / ".vccs-cafef00d-y.tmp"
        fresh.write_bytes(b"in-flight write")

        cache = PersistentCharacterizationCache(tmp_path)
        assert not stale.exists()  # killed writer's leftover: swept
        assert fresh.exists()  # recent file: never raced
        cache.clear()
        assert not fresh.exists()  # clear() drops temp leftovers too


def _characterize_in_worker(args):
    """Module-level worker: characterise one cell arc against a cache dir."""
    cache_dir, cell_name = args
    library = build_default_library("cmos130")
    arc = library.cell(cell_name).noise_arcs(output_high=False)[0]
    characterizer = LibraryCharacterizer(
        library, vccs_grid=GRID, disk_cache=PersistentCharacterizationCache(cache_dir)
    )
    surface = characterizer.load_surface(cell_name, arc)
    return (
        characterizer.stats.miss_count("vccs"),
        characterizer.stats.disk_hit_count("vccs"),
        surface.current.tolist(),
    )


class TestCrossProcessSharing:
    def test_processpool_round_trip(self, tmp_path, library, arc):
        """A value characterised here is a disk hit in spawned workers."""
        parent = make_characterizer(tmp_path, library)
        surface = parent.load_surface("NAND2_X1", arc)

        # Spawn (not fork) so workers cannot inherit in-memory state.
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=2, mp_context=context) as pool:
            outcomes = list(
                pool.map(
                    _characterize_in_worker,
                    [(str(tmp_path), "NAND2_X1")] * 2,
                )
            )
        for misses, disk_hits, current in outcomes:
            assert misses == 0  # nothing recomputed in any worker
            assert disk_hits == 1
            np.testing.assert_array_equal(np.array(current), surface.current)

    def test_worker_stores_are_visible_to_parent(self, tmp_path):
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            misses, disk_hits, _ = pool.submit(
                _characterize_in_worker, (str(tmp_path), "INV_X1")
            ).result()
        assert misses == 1 and disk_hits == 0
        warm = make_characterizer(tmp_path)
        arc = warm.library.cell("INV_X1").noise_arcs(output_high=False)[0]
        warm.load_surface("INV_X1", arc)
        assert warm.stats.miss_count() == 0
        assert warm.disk_cache.stats.snapshot()["hits"] == 1


class TestEntrySerialization:
    def test_all_four_model_kinds_round_trip(self, tmp_path, library, arc):
        cold = make_characterizer(tmp_path, library)
        cold.load_surface("NAND2_X1", arc)
        cold.thevenin_driver("INV_X2", rising=False)
        cold.noise_rejection_curve("INV_X1")
        cold.propagation_table("NAND2_X1", arc)
        assert len(cold.disk_cache) == 4

        warm = make_characterizer(tmp_path)
        warm.load_surface("NAND2_X1", arc)
        warm.thevenin_driver("INV_X2", rising=False)
        warm.noise_rejection_curve("INV_X1")
        warm.propagation_table("NAND2_X1", arc)
        assert warm.stats.miss_count() == 0
        assert warm.disk_cache.stats.snapshot()["hits"] == 4

    def test_entries_are_plain_npz_without_pickles(self, tmp_path, library, arc):
        make_characterizer(tmp_path, library).load_surface("NAND2_X1", arc)
        entry = next(iter(tmp_path.glob("vccs-*.npz")))
        with np.load(entry, allow_pickle=False) as payload:
            meta = json.loads(str(payload["__meta__"]))
            assert meta["model"] == "vccs"
            assert "current" in payload.files
