"""MOSFET model tests: operating regions, symmetry and inverter behaviour."""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, MOSFET, MOSFETParams, PulseWaveform, dc_operating_point, transient
from repro.circuit.mosfet import AlphaPowerModel, Level1Model, make_model
from repro.units import fF, ps, um

NMOS = MOSFETParams(polarity="n", vto=0.35, kp=3e-4, lambda_=0.05, l_nominal=0.13e-6)
PMOS = MOSFETParams(polarity="p", vto=0.35, kp=1.2e-4, lambda_=0.08, l_nominal=0.13e-6)


class TestLevel1Model:
    def test_cutoff(self):
        model = Level1Model(NMOS, w=1e-6, l=0.13e-6)
        ids, gm, gds = model.ids(vgs=0.2, vds=1.0)
        assert ids == 0.0 and gm == 0.0 and gds == 0.0

    def test_triode_and_saturation_continuity(self):
        model = Level1Model(NMOS, w=1e-6, l=0.13e-6)
        vgs = 1.0
        vov = vgs - NMOS.vto
        below, _, _ = model.ids(vgs, vov - 1e-6)
        above, _, _ = model.ids(vgs, vov + 1e-6)
        assert below == pytest.approx(above, rel=1e-3)

    def test_saturation_square_law(self):
        model = Level1Model(NMOS.scaled(lambda_=0.0), w=1e-6, l=0.13e-6)
        i1, _, _ = model.ids(0.35 + 0.2, 1.2)
        i2, _, _ = model.ids(0.35 + 0.4, 1.2)
        assert i2 / i1 == pytest.approx(4.0, rel=1e-6)

    def test_gm_and_gds_signs(self):
        model = Level1Model(NMOS, w=1e-6, l=0.13e-6)
        _, gm, gds = model.ids(1.0, 0.3)
        assert gm > 0.0 and gds > 0.0


class TestAlphaPowerModel:
    def test_reduces_to_square_law_at_alpha_two(self):
        params = NMOS.scaled(alpha=2.0, vdsat_coeff=1.0)
        level1 = Level1Model(params, w=1e-6, l=0.13e-6)
        alpha = AlphaPowerModel(params, w=1e-6, l=0.13e-6)
        i_sat_l1, _, _ = level1.ids(1.0, 1.2)
        i_sat_ap, _, _ = alpha.ids(1.0, 1.2)
        assert i_sat_ap == pytest.approx(i_sat_l1, rel=1e-6)

    def test_sub_quadratic_overdrive_dependence(self):
        params = NMOS.scaled(alpha=1.4)
        model = AlphaPowerModel(params, w=1e-6, l=0.13e-6)
        i1, _, _ = model.ids(0.35 + 0.2, 1.2)
        i2, _, _ = model.ids(0.35 + 0.4, 1.2)
        assert i2 / i1 == pytest.approx(2.0 ** 1.4, rel=0.05)

    def test_triode_matches_saturation_at_vdsat(self):
        params = NMOS.scaled(alpha=1.4, vdsat_coeff=0.9, lambda_=0.0)
        model = AlphaPowerModel(params, w=1e-6, l=0.13e-6)
        vgs = 1.0
        vdsat = 0.9 * (vgs - params.vto) ** 0.7
        below, _, _ = model.ids(vgs, vdsat * 0.999)
        above, _, _ = model.ids(vgs, vdsat * 1.001)
        assert below == pytest.approx(above, rel=1e-2)

    def test_make_model_auto_selection(self):
        assert isinstance(make_model(NMOS, 1e-6, 0.13e-6, "auto"), Level1Model)
        assert isinstance(make_model(NMOS.scaled(alpha=1.4), 1e-6, 0.13e-6, "auto"), AlphaPowerModel)
        with pytest.raises(ValueError):
            make_model(NMOS, 1e-6, 0.13e-6, "bsim4")


class TestMOSFETElement:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            MOSFETParams(polarity="x", vto=0.3, kp=1e-4)
        with pytest.raises(ValueError):
            MOSFETParams(polarity="n", vto=-0.3, kp=1e-4)
        with pytest.raises(ValueError):
            MOSFETParams(polarity="n", vto=0.3, kp=-1e-4)
        with pytest.raises(ValueError):
            MOSFET("M1", "d", "g", "s", NMOS, w=-1e-6)

    def test_drain_source_symmetry(self):
        fet = MOSFET("M1", "d", "g", "s", NMOS, w=1e-6)
        forward = fet.drain_current(vd=0.1, vg=1.2, vs=0.0)
        reverse = fet.drain_current(vd=0.0, vg=1.2, vs=0.1)
        assert forward == pytest.approx(-reverse, rel=1e-9)

    def test_pmos_mirror(self):
        nmos_fet = MOSFET("MN", "d", "g", "s", NMOS, w=1e-6)
        pmos_fet = MOSFET("MP", "d", "g", "s", PMOS.scaled(kp=NMOS.kp, vto=NMOS.vto, lambda_=NMOS.lambda_), w=1e-6)
        i_n = nmos_fet.drain_current(vd=1.2, vg=1.2, vs=0.0)
        i_p = pmos_fet.drain_current(vd=-1.2, vg=-1.2, vs=0.0)
        assert i_p == pytest.approx(-i_n, rel=1e-9)

    def test_capacitance_estimates_positive_and_scale_with_width(self):
        small = MOSFET("M1", "d", "g", "s", NMOS, w=0.5e-6)
        large = MOSFET("M2", "d", "g", "s", NMOS, w=1.0e-6)
        assert 0 < small.gate_capacitance() < large.gate_capacitance()
        assert 0 < small.diffusion_capacitance() < large.diffusion_capacitance()
        assert 0 < small.overlap_capacitance() < large.overlap_capacitance()


class TestInverter:
    def build_inverter(self, vdd=1.2):
        c = Circuit("inv")
        c.add_voltage_source("VDD", "vdd", "0", vdd)
        c.add_voltage_source("VIN", "in", "0", 0.0)
        c.add_mosfet("MN", "out", "in", "0", NMOS, w=um(0.4))
        c.add_mosfet("MP", "out", "in", "vdd", PMOS, w=um(0.8))
        c.add_capacitor("CL", "out", "0", fF(10))
        return c

    def test_dc_rails(self):
        c = self.build_inverter()
        sol = dc_operating_point(c)
        assert sol["out"] == pytest.approx(1.2, abs=0.01)

        c2 = self.build_inverter()
        c2["VIN"].waveform = type(c2["VIN"].waveform)(1.2)
        sol2 = dc_operating_point(c2)
        assert sol2["out"] == pytest.approx(0.0, abs=0.01)

    def test_transfer_curve_is_monotonically_decreasing(self):
        c = self.build_inverter()
        vin_values = np.linspace(0.0, 1.2, 13)
        vout = []
        previous = None
        for vin in vin_values:
            from repro.circuit import DCValue

            c["VIN"].waveform = DCValue(float(vin))
            sol = dc_operating_point(c, x0=previous)
            previous = sol.x
            vout.append(sol["out"])
        assert all(a >= b - 1e-6 for a, b in zip(vout, vout[1:]))
        assert vout[0] > 1.1 and vout[-1] < 0.1

    def test_switching_transient(self):
        c = Circuit("invsw")
        c.add_voltage_source("VDD", "vdd", "0", 1.2)
        c.add_voltage_source(
            "VIN", "in", "0", PulseWaveform(0.0, 1.2, delay=ps(50), rise=ps(20))
        )
        c.add_mosfet("MN", "out", "in", "0", NMOS, w=um(0.4))
        c.add_mosfet("MP", "out", "in", "vdd", PMOS, w=um(0.8))
        c.add_capacitor("CL", "out", "0", fF(20))
        result = transient(c, t_stop=ps(500), dt=ps(1))
        out = result["out"]
        assert out.values[0] == pytest.approx(1.2, abs=0.02)
        assert out.values[-1] == pytest.approx(0.0, abs=0.02)
        # The output crosses half rail after the input does.
        assert out.crossings(0.6)[0] > ps(55)


@given(
    vgs=st.floats(min_value=0.0, max_value=1.4),
    vds=st.floats(min_value=0.0, max_value=1.4),
    delta=st.floats(min_value=1e-5, max_value=1e-3),
)
@settings(max_examples=60, deadline=None)
@example(vgs=0.359375, vds=1.0, delta=0.000998459721420668)
@example(vgs=0.359375, vds=0.0, delta=0.000998459721420668)
def test_property_level1_gradients_match_finite_differences(vgs, vds, delta):
    model = Level1Model(NMOS, w=1e-6, l=0.13e-6)
    ids, gm, gds = model.ids(vgs, vds)
    ids_dvgs, _, _ = model.ids(vgs + delta, vds)
    ids_dvds, _, _ = model.ids(vgs, vds + delta)
    # The forward difference carries an O(delta) truncation error bounded by
    # delta/2 * |d2I/dV2|; for the square law the curvature is at most
    # ~beta * (1 + lambda * vds) in either direction (plus the gm/gds cross
    # term at the saturation kink), so the absolute tolerance must scale
    # with delta or tiny-overdrive corners fail spuriously.
    beta = NMOS.kp * 1e-6 / 0.13e-6
    tol = 1e-6 + delta * beta * (1.0 + NMOS.lambda_ * 1.4)
    assert (ids_dvgs - ids) / delta == pytest.approx(gm, rel=0.05, abs=tol)
    assert (ids_dvds - ids) / delta == pytest.approx(gds, rel=0.05, abs=tol)


@given(
    vgs=st.floats(min_value=0.0, max_value=1.4),
    vds=st.floats(min_value=0.0, max_value=1.4),
)
@settings(max_examples=60, deadline=None)
def test_property_drain_current_non_negative_for_positive_vds(vgs, vds):
    model = Level1Model(NMOS, w=1e-6, l=0.13e-6)
    ids, _, _ = model.ids(vgs, vds)
    assert ids >= 0.0
