"""Vectorized-assembly kernel and LU-reuse fast-path tests.

The compiled kernel is validated against the legacy element-by-element
assembly (the authoritative reference), and the Newton-free linear fast path
is cross-checked against the generic Newton path on the RC-ladder / Thevenin
circuits that dominate the characterisation and golden workloads.
"""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    PulseWaveform,
    SaturatedRamp,
    StampContext,
    assemble,
    assemble_legacy,
    transient,
)
from repro.circuit.mosfet import MOSFETParams
from repro.units import fF, ps


def rc_ladder(num_segments=12, r=120.0, c=fF(4), coupling=fF(1)):
    """A Thevenin-driven coupled RC ladder (the characterisation hot shape)."""
    circuit = Circuit(f"ladder{num_segments}")
    circuit.add_voltage_source(
        "VTH", "drv", "0", SaturatedRamp(0.0, 1.2, delay=ps(50), transition=ps(40))
    )
    circuit.add_resistor("RTH", "drv", "n0", 200.0)
    for i in range(num_segments):
        circuit.add_resistor(f"R{i}", f"n{i}", f"n{i + 1}", r)
        circuit.add_capacitor(f"C{i}", f"n{i + 1}", "0", c)
        circuit.add_capacitor(f"CC{i}", f"n{i}", f"n{i + 1}", coupling)
    circuit.add_resistor("RHOLD", f"n{num_segments}", "0", 5e4)
    return circuit


def thevenin_load_circuit():
    """Thevenin aggressor coupling into a held victim load (linear)."""
    circuit = Circuit("thevenin_load")
    circuit.add_voltage_source(
        "VAGG", "agg_src", "0", SaturatedRamp(0.0, 1.2, delay=ps(30), transition=ps(60))
    )
    circuit.add_resistor("RAGG", "agg_src", "agg", 350.0)
    circuit.add_capacitor("CAGG", "agg", "0", fF(18))
    circuit.add_capacitor("CC", "agg", "vic", fF(25))
    circuit.add_resistor("RHOLD", "vic", "0", 900.0)
    circuit.add_capacitor("CVIC", "vic", "0", fF(30))
    circuit.add_vccs("GSENSE", "sense", "0", "vic", "0", 1e-4)
    circuit.add_resistor("RSENSE", "sense", "0", 1e3)
    return circuit


def mixed_element_circuit():
    """One of everything, for kernel-vs-legacy assembly equivalence."""
    circuit = Circuit("mixed")
    circuit.add_voltage_source("V1", "a", "0", PulseWaveform(0.2, 1.0, delay=ps(5)))
    circuit.add_current_source("I1", "a", "b", 1e-5)
    circuit.add_resistor("R1", "a", "b", 1e3)
    circuit.add_resistor("R2", "b", "0", 2e3)
    circuit.add_capacitor("C1", "b", "c", fF(10))
    circuit.add_capacitor("C0", "c", "0", 0.0)  # zero-value cap: gmin stamp
    circuit.add_inductor("L1", "c", "d", 1e-10)
    circuit.add_resistor("R3", "d", "0", 500.0)
    circuit.add_vccs("G1", "d", "0", "a", "0", 2e-4)
    circuit.add_vcvs("E1", "e", "0", "b", "0", 1.5)
    circuit.add_resistor("R4", "e", "0", 2e3)
    circuit.add_diode("D1", "b", "0")
    circuit.add_behavioral_current_source(
        "B1", "d", "0", ["b"], lambda v: (1e-5 * v[0] ** 2, [2e-5 * v[0]])
    )
    circuit.add_mosfet(
        "M1",
        "d",
        "a",
        "0",
        MOSFETParams(polarity="n", vto=0.3, kp=2e-4),
        w=1e-6,
        l=0.13e-6,
    )
    return circuit


class TestKernelMatchesLegacyAssembly:
    def _contexts(self, n):
        rng = np.random.default_rng(7)
        x = rng.uniform(-0.5, 1.5, n)
        prev_x = rng.uniform(-0.5, 1.5, n)
        trap_state = {
            "C1": {"i": 3e-6},
            "C0": {"i": 0.0},
            "L1": {"i": 2e-5, "v": 0.01},
        }
        return [
            StampContext(x=x, gmin=1e-9),
            StampContext(x=x, gmin=1e-12, source_scale=0.4),
            StampContext(x=x, prev_x=prev_x, time=ps(20), dt=ps(1), method="be", gmin=1e-9),
            StampContext(x=x, prev_x=prev_x, time=ps(20), dt=ps(1), method="trap", gmin=1e-9),
            StampContext(
                x=x,
                prev_x=prev_x,
                time=ps(20),
                dt=ps(2),
                method="trap",
                gmin=1e-9,
                prev_state=trap_state,
            ),
        ]

    def test_assembles_identically_across_contexts(self):
        circuit = mixed_element_circuit()
        circuit.prepare()
        for ctx in self._contexts(circuit.num_unknowns):
            A_ref, z_ref = assemble_legacy(circuit, ctx)
            A, z = assemble(circuit, ctx)
            np.testing.assert_allclose(A, A_ref, rtol=0, atol=1e-12)
            np.testing.assert_allclose(z, z_ref, rtol=0, atol=1e-18)

    def test_base_matrix_cache_is_hit_across_iterations(self):
        circuit = mixed_element_circuit()
        circuit.prepare()
        kernel = circuit.kernel
        ctx = StampContext(
            x=np.zeros(circuit.num_unknowns),
            prev_x=np.zeros(circuit.num_unknowns),
            dt=ps(1),
            method="trap",
            gmin=1e-9,
        )
        assemble(circuit, ctx)
        builds = kernel.stats.base_builds
        assemble(circuit, ctx)
        assemble(circuit, ctx)
        assert kernel.stats.base_builds == builds
        assert kernel.stats.base_hits >= 2


class TestLinearFastPath:
    @pytest.mark.parametrize("method", ["trap", "be"])
    def test_rc_ladder_matches_newton(self, method):
        fast = transient(rc_ladder(), t_stop=ps(400), dt=ps(1), method=method, solver="fast")
        newton = transient(
            rc_ladder(), t_stop=ps(400), dt=ps(1), method=method, solver="newton"
        )
        assert fast.stats.fast_path
        assert not newton.stats.fast_path
        np.testing.assert_allclose(fast.times, newton.times)
        assert np.max(np.abs(fast.solutions - newton.solutions)) < 1e-9

    def test_rc_ladder_matches_legacy(self):
        fast = transient(rc_ladder(), t_stop=ps(400), dt=ps(1), solver="fast")
        legacy = transient(rc_ladder(), t_stop=ps(400), dt=ps(1), solver="legacy")
        assert np.max(np.abs(fast.solutions - legacy.solutions)) < 1e-9

    def test_thevenin_load_matches_newton(self):
        fast = transient(thevenin_load_circuit(), t_stop=ps(500), dt=ps(1), solver="fast")
        newton = transient(
            thevenin_load_circuit(), t_stop=ps(500), dt=ps(1), solver="newton"
        )
        assert np.max(np.abs(fast.solutions - newton.solutions)) < 1e-9

    def test_uniform_grid_factorizes_once_per_dt(self):
        result = transient(
            rc_ladder(), t_stop=ps(300), dt=ps(1), solver="fast", include_breakpoints=False
        )
        assert result.stats.matrix_factorizations == 1
        assert result.stats.lu_reuse_hits == result.stats.num_time_points - 1
        assert result.stats.newton_iterations == 0

    def test_auto_selects_fast_path_for_linear_circuits(self):
        result = transient(rc_ladder(), t_stop=ps(100), dt=ps(1))
        assert result.stats.solver == "auto"
        assert result.stats.fast_path

    def test_nonlinear_circuits_never_take_the_fast_path(self):
        circuit = mixed_element_circuit()
        result = transient(circuit, t_stop=ps(50), dt=ps(1))
        assert not result.stats.fast_path
        assert result.stats.newton_iterations > 0

        with pytest.raises(ValueError, match="nonlinear"):
            transient(mixed_element_circuit(), t_stop=ps(50), dt=ps(1), solver="fast")

    def test_custom_element_with_default_partition_takes_newton_path(self):
        # A linear custom element that keeps the conservative base-class
        # defaults (is_nonlinear() False, partition() "nonlinear") must be
        # dispatched to the Newton path by solver="auto", not crash the
        # fast path.
        from repro.circuit import Element
        from repro.circuit.elements import stamp_conductance

        class CustomConductance(Element):
            def __init__(self, name, a, b, g):
                super().__init__(name)
                self.a, self.b, self.g = a, b, g

            def node_names(self):
                return [self.a, self.b]

            def stamp(self, A, z, ctx):
                stamp_conductance(A, self.nodes[0], self.nodes[1], self.g)

        circuit = Circuit("custom")
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add(CustomConductance("X1", "out", "0", 1e-3))
        circuit.add_capacitor("C1", "out", "0", fF(5))
        assert not circuit.is_nonlinear()

        result = transient(circuit, t_stop=ps(100), dt=ps(1))  # solver="auto"
        assert not result.stats.fast_path
        assert result["out"].values[-1] == pytest.approx(0.5, rel=1e-3)
        with pytest.raises(ValueError, match="per-iteration"):
            transient(circuit, t_stop=ps(100), dt=ps(1), solver="fast")

    def test_subclass_overriding_stamp_is_demoted_to_per_iteration(self):
        # A Capacitor subclass that overrides stamp() without overriding
        # partition() must not be compiled under the parent's "dynamic"
        # claim -- the kernel demotes it to per-iteration stamping so the
        # override is honoured (and the fast path is skipped).
        from repro.circuit import Capacitor

        class LeakyCap(Capacitor):
            def stamp(self, A, z, ctx):
                super().stamp(A, z, ctx)
                # Extra constant leakage current out of node a.
                if self.nodes[0] >= 0:
                    z[self.nodes[0]] -= 1e-6

        def build():
            circuit = Circuit("leaky")
            circuit.add_voltage_source("V1", "in", "0", 1.0)
            circuit.add_resistor("R1", "in", "out", 1e3)
            circuit.add(LeakyCap("CL", "out", "0", fF(10)))
            return circuit

        auto = transient(build(), t_stop=ps(200), dt=ps(1))
        legacy = transient(build(), t_stop=ps(200), dt=ps(1), solver="legacy")
        assert not auto.stats.fast_path
        assert np.max(np.abs(auto.solutions - legacy.solutions)) < 1e-9
        # The leakage visibly shifts the settled output below 1 V.
        assert auto["out"].values[-1] == pytest.approx(1.0 - 1e-6 * 1e3, rel=1e-3)

    def test_subclass_overriding_value_is_demoted_to_per_iteration(self):
        # A source subclass that changes value()/is_nonlinear() without
        # overriding partition() must not keep the parent's "source" claim:
        # its value may depend on the iterate, so it needs the Newton path.
        from repro.circuit import CurrentSource

        class ClampCurrent(CurrentSource):
            def is_nonlinear(self):
                return True

            def value(self, ctx):
                # Iterate-dependent: only injects above 0.4 V at the node.
                v = ctx.v(self.nodes[0])
                return 1e-4 if v > 0.4 else 0.0

        def build():
            circuit = Circuit("clamp")
            circuit.add_voltage_source("V1", "in", "0", 1.0)
            circuit.add_resistor("R1", "in", "out", 1e3)
            circuit.add(ClampCurrent("ICL", "out", "0", 0.0))
            circuit.add_capacitor("C1", "out", "0", fF(5))
            return circuit

        auto = transient(build(), t_stop=ps(100), dt=ps(1))
        legacy = transient(build(), t_stop=ps(100), dt=ps(1), solver="legacy")
        assert not auto.stats.fast_path
        assert np.max(np.abs(auto.solutions - legacy.solutions)) < 1e-9

    def test_inductor_circuit_fast_path(self):
        def lr():
            circuit = Circuit("lr")
            circuit.add_voltage_source(
                "V1", "in", "0", PulseWaveform(0.0, 1.0, delay=ps(10), rise=ps(1))
            )
            circuit.add_inductor("L1", "in", "mid", 1e-9)
            circuit.add_resistor("R1", "mid", "0", 100.0)
            return circuit

        fast = transient(lr(), t_stop=ps(100), dt=ps(0.5), solver="fast")
        newton = transient(lr(), t_stop=ps(100), dt=ps(0.5), solver="newton")
        assert fast.stats.fast_path
        assert np.max(np.abs(fast.solutions - newton.solutions)) < 1e-9


class TestPrepareOnceAndInvalidation:
    def test_assemble_requires_prepared_circuit(self):
        circuit = rc_ladder(num_segments=2)
        ctx = StampContext(x=np.zeros(1))
        with pytest.raises(RuntimeError, match="not prepared"):
            assemble(circuit, ctx)
        circuit.prepare()
        assemble(circuit, StampContext(x=np.zeros(circuit.num_unknowns)))

    def test_adding_an_element_invalidates_the_kernel(self):
        circuit = rc_ladder(num_segments=2)
        circuit.prepare()
        assert circuit.is_prepared
        circuit.add_resistor("REXTRA", "n2", "0", 1e3)
        assert not circuit.is_prepared
        with pytest.raises(RuntimeError, match="not prepared"):
            circuit.kernel
        # Analysis entry points re-prepare automatically.
        result = transient(circuit, t_stop=ps(50), dt=ps(1))
        assert circuit.is_prepared
        assert result.stats.fast_path

    def test_results_reflect_elements_added_between_runs(self):
        circuit = Circuit("divider")
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add_capacitor("C1", "out", "0", fF(1))
        first = transient(circuit, t_stop=ps(200), dt=ps(1))
        assert first["out"].values[-1] == pytest.approx(1.0, rel=1e-3)
        circuit.add_resistor("R2", "out", "0", 1e3)
        second = transient(circuit, t_stop=ps(200), dt=ps(1))
        assert second["out"].values[-1] == pytest.approx(0.5, rel=1e-3)

    def test_mutating_a_linear_value_invalidates_the_kernel(self):
        # Element values are compiled into the kernel; mutating one after
        # prepare() must not silently serve stale results.
        circuit = Circuit("divider")
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", 1e3)
        r2 = circuit.add_resistor("R2", "out", "0", 1e3)
        circuit.add_capacitor("C1", "out", "0", fF(1))
        first = transient(circuit, t_stop=ps(200), dt=ps(1))
        assert first["out"].values[-1] == pytest.approx(0.5, rel=1e-3)
        r2.resistance = 3e3
        assert not circuit.is_prepared
        second = transient(circuit, t_stop=ps(200), dt=ps(1))
        assert second["out"].values[-1] == pytest.approx(0.75, rel=1e-3)
        circuit["C1"].capacitance = fF(2)
        assert not circuit.is_prepared

    def test_waveform_swap_reuses_the_kernel(self):
        # The characterisation sweep pattern: mutate a source waveform
        # in place and re-run without touching the topology.
        circuit = Circuit("swap")
        source = circuit.add_voltage_source("V1", "in", "0", 0.5)
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add_capacitor("C1", "out", "0", fF(10))
        circuit.prepare()
        kernel = circuit.kernel
        first = transient(circuit, t_stop=ps(300), dt=ps(1))
        from repro.circuit import DCValue

        source.waveform = DCValue(1.0)
        second = transient(circuit, t_stop=ps(300), dt=ps(1))
        assert circuit.kernel is kernel  # no recompilation
        assert first["out"].values[-1] == pytest.approx(0.5, rel=1e-3)
        assert second["out"].values[-1] == pytest.approx(1.0, rel=1e-3)


class TestNodeVoltageContract:
    def test_unknown_node_raises_key_error(self):
        result = transient(rc_ladder(num_segments=2), t_stop=ps(50), dt=ps(1))
        with pytest.raises(KeyError, match="no_such_node"):
            result.node_voltage("no_such_node")
        with pytest.raises(KeyError):
            result["typo"]

    def test_ground_aliases_are_exactly_zero(self):
        result = transient(rc_ladder(num_segments=2), t_stop=ps(50), dt=ps(1))
        for alias in ("0", "gnd", "VSS", "GND!"):
            waveform = result[alias]
            assert np.all(waveform.values == 0.0)


class TestStatisticsPlumbing:
    def test_engine_statistics_merge_includes_kernel_counters(self):
        from repro.noise.engine import EngineStatistics

        a = EngineStatistics(
            num_time_points=10,
            newton_iterations=20,
            assemblies_avoided=15,
            lu_reuse_hits=9,
            matrix_factorizations=1,
            fast_path_runs=1,
        )
        b = EngineStatistics(assemblies_avoided=5, lu_reuse_hits=1, matrix_factorizations=2)
        a.merge(b)
        assert a.assemblies_avoided == 20
        assert a.lu_reuse_hits == 10
        assert a.matrix_factorizations == 3
        assert a.fast_path_runs == 1

    def test_newton_path_counts_avoided_assemblies(self):
        result = transient(mixed_element_circuit(), t_stop=ps(50), dt=ps(1))
        stats = result.stats
        # Every iteration after the first per (dt, method) key reuses the base.
        assert stats.assemblies_avoided > 0
        assert stats.newton_iterations >= stats.num_time_points
