"""Differential dense-vs-sparse verification suite.

The dense kernel is the test oracle (it is itself pinned to the legacy
element-by-element assembly by ``test_fastpath.py``); this suite drives the
sparse backend against it on property-based random linear RC networks,
MOSFET-loaded clusters, DC operating points, and the LU-reuse / cache
invalidation paths.  Agreement is required at 1e-9 V everywhere -- the same
bar the fast-vs-Newton cross-checks use.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, SaturatedRamp, transient
from repro.circuit.dc import dc_operating_point
from repro.circuit.mosfet import MOSFETParams
from repro.circuit.stamping import (
    SPARSE_AUTO_THRESHOLD,
    CompiledKernel,
    SparseLinearSolver,
    resolve_backend,
)
from repro.interconnect import (
    make_coupled_pair,
    make_driven_circuit,
    make_rc_ladder,
    make_rc_mesh,
    make_rc_tree,
    make_victim_aggressor_circuit,
)
from repro.units import fF, ps

#: Sparse and dense must agree to this tolerance on every path.
MAX_DV = 1e-9

_NMOS = MOSFETParams(polarity="n", vto=0.35, kp=3e-4, lambda_=0.06)
_PMOS = MOSFETParams(polarity="p", vto=0.35, kp=1.2e-4, lambda_=0.08)


# ---------------------------------------------------------------------------
# Random-network builders (seed-deterministic, shared by both backends)
# ---------------------------------------------------------------------------

def random_linear_network(seed, num_nodes):
    """A random connected linear RC network with a ramp driver.

    A resistor backbone guarantees every node is conductively reachable
    from the driven node; random extra resistors, ground caps and coupling
    caps (drawn from the seeded rng) vary topology, conditioning and the
    sparsity pattern.
    """
    rng = np.random.default_rng(seed)
    circuit = Circuit(f"rand_{seed}_{num_nodes}")
    circuit.add_voltage_source(
        "VTH",
        "drv",
        "0",
        SaturatedRamp(0.0, 1.2, delay=ps(rng.uniform(10, 60)), transition=ps(rng.uniform(20, 80))),
    )
    circuit.add_resistor("RTH", "drv", "n0", float(rng.uniform(50, 400)))
    for i in range(1, num_nodes):
        # Backbone: attach node i to a random earlier node.
        parent = int(rng.integers(0, i))
        circuit.add_resistor(f"RB{i}", f"n{parent}", f"n{i}", float(rng.uniform(20, 500)))
    for i in range(num_nodes):
        if rng.random() < 0.8:
            circuit.add_capacitor(f"CG{i}", f"n{i}", "0", float(rng.uniform(0.5, 8.0)) * fF(1))
    num_extra = int(rng.integers(0, max(1, num_nodes // 2)))
    for k in range(num_extra):
        a, b = rng.choice(num_nodes, size=2, replace=False)
        kind = rng.random()
        if kind < 0.5:
            circuit.add_resistor(f"RX{k}", f"n{a}", f"n{b}", float(rng.uniform(100, 2e3)))
        else:
            circuit.add_capacitor(f"CX{k}", f"n{a}", f"n{b}", float(rng.uniform(0.2, 3.0)) * fF(1))
    if rng.random() < 0.5:
        circuit.add_vccs("GM", f"n{num_nodes - 1}", "0", "n0", "0", float(rng.uniform(1e-5, 5e-4)))
    circuit.add_resistor("RHOLD", f"n{num_nodes - 1}", "0", 5e4)
    return circuit


def mosfet_loaded_cluster(seed, num_segments):
    """A coupled two-net ladder with inverter receivers (forces Newton)."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(f"mos_{seed}_{num_segments}")
    circuit.add_voltage_source("VDD", "vdd", "0", 1.2)
    circuit.add_resistor("RHOLD_vic", "vic_0", "0", float(rng.uniform(200, 800)))
    circuit.add_voltage_source(
        "VTH",
        "agg_src",
        "0",
        SaturatedRamp(0.0, 1.2, delay=ps(rng.uniform(20, 60)), transition=ps(rng.uniform(30, 80))),
    )
    circuit.add_resistor("RTH", "agg_src", "agg_0", float(rng.uniform(100, 400)))
    for net in ("vic", "agg"):
        for i in range(num_segments):
            circuit.add_resistor(
                f"R_{net}_{i}", f"{net}_{i}", f"{net}_{i + 1}", float(rng.uniform(40, 200))
            )
            circuit.add_capacitor(
                f"Cg_{net}_{i}", f"{net}_{i + 1}", "0", float(rng.uniform(1, 5)) * fF(1)
            )
    for i in range(num_segments + 1):
        circuit.add_capacitor(f"Cc_{i}", f"vic_{i}", f"agg_{i}", float(rng.uniform(0.5, 2.5)) * fF(1))
    for net in ("vic", "agg"):
        tail = f"{net}_{num_segments}"
        circuit.add_mosfet(f"MN_{net}", f"{net}_out", tail, "0", _NMOS, w=1e-6)
        circuit.add_mosfet(f"MP_{net}", f"{net}_out", tail, "vdd", _PMOS, w=2e-6)
        circuit.add_capacitor(f"CL_{net}", f"{net}_out", "0", fF(2))
    return circuit


def _run_both(builder, *args, t_stop=ps(300), dt=ps(1), **kwargs):
    dense = transient(builder(*args), t_stop=t_stop, dt=dt, backend="dense", **kwargs)
    sparse = transient(builder(*args), t_stop=t_stop, dt=dt, backend="sparse", **kwargs)
    assert dense.stats.backend == "dense"
    assert sparse.stats.backend == "sparse"
    return dense, sparse


# ---------------------------------------------------------------------------
# Property-based differential tests
# ---------------------------------------------------------------------------

class TestPropertyBasedAgreement:
    @given(seed=st.integers(0, 10_000), num_nodes=st.integers(3, 30))
    @settings(max_examples=30, deadline=None)
    def test_random_linear_transient_agrees(self, seed, num_nodes):
        dense, sparse = _run_both(random_linear_network, seed, num_nodes)
        assert sparse.stats.fast_path  # linear networks stay Newton-free
        assert np.max(np.abs(dense.solutions - sparse.solutions)) < MAX_DV

    @given(seed=st.integers(0, 10_000), num_nodes=st.integers(3, 30))
    @settings(max_examples=20, deadline=None)
    def test_random_linear_dc_agrees(self, seed, num_nodes):
        dense = dc_operating_point(random_linear_network(seed, num_nodes), backend="dense")
        sparse = dc_operating_point(random_linear_network(seed, num_nodes), backend="sparse")
        assert np.max(np.abs(dense.x - sparse.x)) < MAX_DV

    @given(seed=st.integers(0, 10_000), num_segments=st.integers(2, 10))
    @settings(max_examples=15, deadline=None)
    def test_mosfet_loaded_cluster_agrees(self, seed, num_segments):
        dense, sparse = _run_both(
            mosfet_loaded_cluster, seed, num_segments, t_stop=ps(200)
        )
        assert not sparse.stats.fast_path  # MOSFETs force the Newton path
        assert sparse.stats.newton_iterations > 0
        assert np.max(np.abs(dense.solutions - sparse.solutions)) < MAX_DV

    @given(seed=st.integers(0, 10_000), num_segments=st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_mosfet_cluster_dc_agrees(self, seed, num_segments):
        dense = dc_operating_point(mosfet_loaded_cluster(seed, num_segments), backend="dense")
        sparse = dc_operating_point(mosfet_loaded_cluster(seed, num_segments), backend="sparse")
        assert np.max(np.abs(dense.x - sparse.x)) < MAX_DV


class TestSynthesizedNetworks:
    @pytest.mark.parametrize("num_nodes", [50, 600])
    def test_ladder_agrees_across_the_auto_threshold(self, num_nodes):
        dense, sparse = _run_both(
            lambda n: make_driven_circuit(make_rc_ladder(n)), num_nodes, t_stop=ps(200)
        )
        assert np.max(np.abs(dense.solutions - sparse.solutions)) < MAX_DV

    def test_mesh_agrees(self):
        dense, sparse = _run_both(
            lambda: make_driven_circuit(make_rc_mesh(12, 12)), t_stop=ps(200)
        )
        assert np.max(np.abs(dense.solutions - sparse.solutions)) < MAX_DV

    def test_tree_agrees(self):
        dense, sparse = _run_both(
            lambda: make_driven_circuit(make_rc_tree(300, branching=3)),
            t_stop=ps(200),
        )
        assert np.max(np.abs(dense.solutions - sparse.solutions)) < MAX_DV

    def test_coupled_pair_agrees(self):
        dense, sparse = _run_both(
            lambda: make_victim_aggressor_circuit(make_coupled_pair(150)),
            t_stop=ps(200),
        )
        assert np.max(np.abs(dense.solutions - sparse.solutions)) < MAX_DV

    def test_auto_selects_by_node_count(self):
        small = transient(
            make_driven_circuit(make_rc_ladder(20)), t_stop=ps(50), dt=ps(1)
        )
        assert small.stats.backend == "dense"
        large = transient(
            make_driven_circuit(make_rc_ladder(SPARSE_AUTO_THRESHOLD + 10)),
            t_stop=ps(50),
            dt=ps(1),
        )
        assert large.stats.backend == "sparse"
        assert large.stats.fast_path

    def test_resolve_backend_policy(self):
        assert resolve_backend("dense", 10_000) == "dense"
        assert resolve_backend("sparse", 3) == "sparse"
        assert resolve_backend("auto", SPARSE_AUTO_THRESHOLD - 1) == "dense"
        assert resolve_backend("auto", SPARSE_AUTO_THRESHOLD) == "sparse"
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("cusolver", 10)

    def test_invalid_backend_rejected_at_entry(self):
        circuit = make_driven_circuit(make_rc_ladder(3))
        with pytest.raises(ValueError, match="backend"):
            transient(circuit, t_stop=ps(10), dt=ps(1), backend="nosuch")


# ---------------------------------------------------------------------------
# LU reuse and invalidation
# ---------------------------------------------------------------------------

class TestSparseLUReuse:
    def test_uniform_grid_factorizes_once(self):
        result = transient(
            make_driven_circuit(make_rc_ladder(40)),
            t_stop=ps(300),
            dt=ps(1),
            backend="sparse",
            include_breakpoints=False,
        )
        assert result.stats.backend == "sparse"
        assert result.stats.matrix_factorizations == 1
        assert result.stats.lu_reuse_hits == result.stats.num_time_points - 1
        assert result.stats.newton_iterations == 0

    def test_sparse_base_cache_is_hit_across_runs(self):
        circuit = make_driven_circuit(make_rc_ladder(30))
        transient(circuit, t_stop=ps(100), dt=ps(1), backend="sparse")
        kernel = circuit.kernel
        builds = kernel.stats.base_builds
        # Same dt/method on the same prepared circuit: no new sparse base.
        transient(circuit, t_stop=ps(100), dt=ps(1), backend="sparse")
        assert circuit.kernel is kernel
        assert kernel.stats.base_builds == builds

    def test_newton_point_reuses_sparse_base_within_a_time_point(self):
        circuit = mosfet_loaded_cluster(3, 4)
        result = transient(circuit, t_stop=ps(50), dt=ps(1), backend="sparse")
        # Newton runs several iterations per point; all but the first per
        # point are served from the cached sparse base.
        assert result.stats.assemblies_avoided > 0


class TestSparseInvalidation:
    """The PR-2 setter-invalidation contract must cover the sparse caches.

    Both the dense and sparse base-matrix caches live on the compiled
    kernel, and ``Circuit.invalidate()`` (triggered by the linear-value
    setters) drops the kernel wholesale -- these tests pin that contract
    for the sparse side, results included.
    """

    def test_value_mutation_drops_sparse_factorizations(self):
        circuit = Circuit("div")
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", 1e3)
        r2 = circuit.add_resistor("R2", "out", "0", 1e3)
        circuit.add_capacitor("C1", "out", "0", fF(1))
        first = transient(circuit, t_stop=ps(200), dt=ps(1), backend="sparse")
        assert first["out"].values[-1] == pytest.approx(0.5, rel=1e-3)
        stale_kernel = circuit.kernel
        assert stale_kernel._sparse_base_cache  # a sparse base was cached

        r2.resistance = 3e3
        assert not circuit.is_prepared  # the setter invalidated the kernel
        second = transient(circuit, t_stop=ps(200), dt=ps(1), backend="sparse")
        assert circuit.kernel is not stale_kernel
        assert second["out"].values[-1] == pytest.approx(0.75, rel=1e-3)

    def test_capacitance_mutation_drops_sparse_factorizations(self):
        circuit = make_driven_circuit(make_rc_ladder(10))
        transient(circuit, t_stop=ps(50), dt=ps(1), backend="sparse")
        assert circuit.kernel._sparse_base_cache
        circuit["ladder_10.C1"].capacitance = fF(40)
        assert not circuit.is_prepared
        # Re-running matches a freshly built mutated circuit, not the stale LU.
        rerun = transient(circuit, t_stop=ps(100), dt=ps(1), backend="sparse")
        fresh_net = make_rc_ladder(10)
        fresh = make_driven_circuit(fresh_net)
        fresh["ladder_10.C1"].capacitance = fF(40)
        fresh_run = transient(fresh, t_stop=ps(100), dt=ps(1), backend="sparse")
        assert np.max(np.abs(rerun.solutions - fresh_run.solutions)) < MAX_DV

    def test_topology_change_drops_sparse_factorizations(self):
        circuit = make_driven_circuit(make_rc_ladder(10))
        transient(circuit, t_stop=ps(50), dt=ps(1), backend="sparse")
        circuit.add_resistor("REXTRA", "vic:5", "0", 1e3)
        assert not circuit.is_prepared
        result = transient(circuit, t_stop=ps(50), dt=ps(1), backend="sparse")
        assert np.all(np.isfinite(result.solutions))


class TestSparseSolverUnit:
    def test_sparse_solver_matches_dense_solve(self):
        from scipy import sparse

        rng = np.random.default_rng(11)
        A = np.diag(rng.uniform(1.0, 2.0, 12))
        A[0, 5] = A[5, 0] = 0.3
        z = rng.uniform(-1, 1, 12)
        solver = SparseLinearSolver(sparse.csc_matrix(A))
        np.testing.assert_allclose(solver.solve(z), np.linalg.solve(A, z), atol=1e-12)

    def test_singular_sparse_matrix_raises(self):
        from scipy import sparse

        from repro.circuit.stamping import SingularMatrixError

        singular = sparse.csc_matrix((3, 3))
        with pytest.raises(SingularMatrixError):
            SparseLinearSolver(singular)

    def test_sparse_base_matches_dense_base(self):
        circuit = mosfet_loaded_cluster(5, 3)
        circuit.prepare()
        kernel: CompiledKernel = circuit.kernel
        key = (float(ps(1)), "trap", circuit.gmin, tuple(False for _ in kernel.dynamic_elements))
        dense = kernel.base_matrix_for_key(key)
        sparse_base = kernel.base_matrix_sparse_for_key(key)
        np.testing.assert_allclose(sparse_base.toarray(), dense, atol=1e-15)


class TestDedicatedEngineBackend:
    """The dedicated engine's sparse path (linear macromodel networks)."""

    def _linear_network(self, num_nodes):
        from repro.noise.engine import MacromodelNetwork

        network = MacromodelNetwork(f"lin_{num_nodes}")
        for i in range(num_nodes):
            network.add_resistance(f"m{i}", f"m{i + 1}", 100.0)
            network.add_capacitance(f"m{i + 1}", "0", fF(3))
        network.add_holding_resistor("m0", 300.0, 0.0)
        network.add_current_source("m0", lambda t: 1e-4 if t > ps(20) else 0.0)
        return network

    @pytest.mark.parametrize("num_nodes", [20, 550])
    def test_linear_engine_sparse_matches_dense(self, num_nodes):
        from repro.noise.engine import DedicatedNoiseEngine

        dense = DedicatedNoiseEngine(self._linear_network(num_nodes), solver_backend="dense")
        sparse = DedicatedNoiseEngine(self._linear_network(num_nodes), solver_backend="sparse")
        assert dense.resolved_backend == "dense"
        assert sparse.resolved_backend == "sparse"
        wd = dense.simulate(ps(200), ps(2), observe=["m0"])["m0"]
        ws = sparse.simulate(ps(200), ps(2), observe=["m0"])["m0"]
        assert np.max(np.abs(wd.values - ws.values)) < MAX_DV
        assert sparse.statistics.fast_path_runs == 1

    def test_nonlinear_network_holds_sparse_end_to_end(self):
        # The table-VCCS Newton loop runs through the factorised sparse base
        # (rank-k Woodbury correction): requesting sparse on a nonlinear
        # network stays sparse and matches the dense Newton path.
        from repro.noise.engine import DedicatedNoiseEngine

        def attach(network):
            network.add_nonlinear_source("m5", lambda t, v: (1e-5 * v, 1e-5))
            return network

        sparse_engine = DedicatedNoiseEngine(
            attach(self._linear_network(10)), solver_backend="sparse"
        )
        dense_engine = DedicatedNoiseEngine(
            attach(self._linear_network(10)), solver_backend="dense"
        )
        assert sparse_engine.resolved_backend == "sparse"
        ws = sparse_engine.simulate(ps(100), ps(2))
        wd = dense_engine.simulate(ps(100), ps(2))
        assert sparse_engine.statistics.newton_iterations > 0
        for name, waveform in ws.items():
            assert np.all(np.isfinite(waveform.values))
            assert np.max(np.abs(waveform.values - wd[name].values)) < 1e-9

    def test_nonlinear_source_added_after_construction_stays_sparse(self):
        from repro.noise.engine import DedicatedNoiseEngine

        network = self._linear_network(12)
        engine = DedicatedNoiseEngine(network, solver_backend="sparse")
        assert engine.resolved_backend == "sparse"
        network.add_nonlinear_source("m5", lambda t, v: (1e-5 * v, 1e-5))
        waveforms = engine.simulate(ps(100), ps(2))
        assert engine.resolved_backend == "sparse"  # no demotion, ever
        assert engine.statistics.newton_iterations > 0
        assert all(np.all(np.isfinite(w.values)) for w in waveforms.values())
