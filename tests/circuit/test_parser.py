"""SPICE-netlist parser tests."""

import pytest

from repro.circuit import (
    Capacitor,
    MOSFET,
    NetlistError,
    Resistor,
    VoltageSource,
    dc_operating_point,
    parse_netlist,
    parse_value,
)
from repro.circuit.sources import DCValue, PiecewiseLinear, PulseWaveform, SineWaveform
from repro.units import ps


class TestValueParsing:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("100", 100.0),
            ("2.5k", 2500.0),
            ("10f", 10e-15),
            ("3p", 3e-12),
            ("7n", 7e-9),
            ("0.13u", 0.13e-6),
            ("5m", 5e-3),
            ("2meg", 2e6),
            ("1g", 1e9),
            ("1.5e-12", 1.5e-12),
            ("10fF", 10e-15),
            ("2.5kOhm", 2500.0),
        ],
    )
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_invalid_value(self):
        with pytest.raises(NetlistError):
            parse_value("abc")


class TestElementCards:
    def test_rc_divider(self):
        netlist = """simple divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
C1 mid 0 10f
.op
.end
"""
        parsed = parse_netlist(netlist)
        assert parsed.title == "simple divider"
        assert isinstance(parsed.circuit["R1"], Resistor)
        assert isinstance(parsed.circuit["C1"], Capacitor)
        solution = parsed.run()
        assert solution["mid"] == pytest.approx(7.5, rel=1e-6)

    def test_source_specifications(self):
        netlist = """sources
V1 a 0 DC 1.2
V2 b 0 PULSE(0 1.2 10p 20p 20p 100p)
V3 c 0 PWL(0 0 100p 1.2)
V4 d 0 SIN(0.6 0.1 1e9)
I1 0 e 1m
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
R5 e 0 1k
.op
"""
        parsed = parse_netlist(netlist)
        assert isinstance(parsed.circuit["V1"].waveform, DCValue)
        assert isinstance(parsed.circuit["V2"].waveform, PulseWaveform)
        assert isinstance(parsed.circuit["V3"].waveform, PiecewiseLinear)
        assert isinstance(parsed.circuit["V4"].waveform, SineWaveform)
        assert parsed.circuit["V2"].waveform.delay == pytest.approx(ps(10))

    def test_mosfet_and_model_cards(self):
        netlist = """inverter
.model nch nmos vto=0.35 kp=3e-4 lambda=0.06
.model pch pmos vto=0.35 kp=1.2e-4
VDD vdd 0 1.2
VIN in 0 0
MN out in 0 0 nch w=0.4u l=0.13u
MP out in vdd vdd pch w=0.8u l=0.13u
CL out 0 5f
.op
"""
        parsed = parse_netlist(netlist)
        mn = parsed.circuit["MN"]
        assert isinstance(mn, MOSFET)
        assert mn.params.polarity == "n"
        assert mn.w == pytest.approx(0.4e-6)
        solution = parsed.run()
        assert solution["out"] == pytest.approx(1.2, abs=0.01)

    def test_subcircuit_expansion(self):
        netlist = """hierarchical
.model nch nmos vto=0.35 kp=3e-4
.model pch pmos vto=0.35 kp=1.2e-4
.subckt inv in out vdd
MN out in 0 0 nch w=0.4u
MP out in vdd vdd pch w=0.8u
.ends
VDD vdd 0 1.2
VIN a 0 0
X1 a b vdd inv
X2 b c vdd inv
CL c 0 5f
.op
"""
        parsed = parse_netlist(netlist)
        assert "X1.MN" in parsed.circuit
        assert "X2.MP" in parsed.circuit
        solution = parsed.run()
        assert solution["b"] == pytest.approx(1.2, abs=0.02)
        assert solution["c"] == pytest.approx(0.0, abs=0.02)

    def test_transient_card_and_ic(self):
        netlist = """rc transient
V1 in 0 PULSE(0 1 10p 1p 1p 1n)
R1 in out 1k
C1 out 0 100f
.ic v(out)=0.0
.tran 1p 400p
"""
        parsed = parse_netlist(netlist)
        assert parsed.analyses[0].kind == "tran"
        result = parsed.run()
        assert result["out"].values[-1] > 0.9

    def test_continuation_and_comments(self):
        netlist = """with continuations
* a comment line
V1 in 0 1.0  $ trailing comment
R1 in out
+ 1k
R2 out 0 1k ; another comment
.op
"""
        parsed = parse_netlist(netlist)
        assert parsed.circuit["R1"].resistance == pytest.approx(1000.0)
        assert parsed.run()["out"] == pytest.approx(0.5, rel=1e-6)

    def test_controlled_sources_and_diode(self):
        netlist = """controlled
VC ctl 0 2
G1 0 out ctl 0 1m
E1 buf 0 ctl 0 2
D1 buf clamp
RC clamp 0 1k
RL out 0 1k
.op
"""
        parsed = parse_netlist(netlist)
        solution = parsed.run()
        assert solution["out"] == pytest.approx(2.0, rel=1e-6)
        assert solution["buf"] == pytest.approx(4.0, rel=1e-6)
        assert 0.3 < solution["clamp"] < 4.0


class TestErrors:
    def test_empty_netlist(self):
        with pytest.raises(NetlistError):
            parse_netlist("")

    def test_unknown_model(self):
        with pytest.raises(NetlistError):
            parse_netlist("bad\nM1 d g 0 0 nosuchmodel w=1u\n.op\n")

    def test_unknown_subckt(self):
        with pytest.raises(NetlistError):
            parse_netlist("bad\nX1 a b nosub\n.op\n")

    def test_missing_ends(self):
        with pytest.raises(NetlistError):
            parse_netlist("bad\n.subckt foo a b\nR1 a b 1k\n")

    def test_port_count_mismatch(self):
        netlist = """bad ports
.subckt foo a b
R1 a b 1k
.ends
X1 n1 foo
"""
        with pytest.raises(NetlistError):
            parse_netlist(netlist)

    def test_unsupported_cards(self):
        with pytest.raises(NetlistError):
            parse_netlist("bad\nQ1 c b e model\n.op\n")
        with pytest.raises(NetlistError):
            parse_netlist("bad\nR1 a 0 1k\n.noise v(a) V1\n")

    def test_no_analysis_requested(self):
        parsed = parse_netlist("nothing\nR1 a 0 1k\n")
        with pytest.raises(NetlistError):
            parsed.run()

    def test_model_card_errors(self):
        with pytest.raises(NetlistError):
            parse_netlist("bad\n.model onlyname\n.op\n")
        with pytest.raises(NetlistError):
            parse_netlist("bad\n.model m1 bjt\n.op\n")

    def test_continuation_without_line(self):
        with pytest.raises(NetlistError):
            parse_netlist("+ 1k\n")
