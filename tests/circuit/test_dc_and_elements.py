"""DC analysis and element stamp tests, checked against hand-computed circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    Circuit,
    ConvergenceError,
    DCValue,
    dc_operating_point,
)


class TestResistiveNetworks:
    def test_voltage_divider(self):
        c = Circuit("divider")
        c.add_voltage_source("V1", "in", "0", 10.0)
        c.add_resistor("R1", "in", "mid", 1e3)
        c.add_resistor("R2", "mid", "0", 3e3)
        sol = dc_operating_point(c)
        assert sol["mid"] == pytest.approx(7.5, rel=1e-6)
        assert sol["in"] == pytest.approx(10.0, rel=1e-9)
        # Source current: 10 V over 4 kohm, flowing + -> - inside the source.
        assert sol.source_current("V1") == pytest.approx(-10.0 / 4e3, rel=1e-6)

    def test_current_source_into_resistor(self):
        c = Circuit("isrc")
        c.add_current_source("I1", "0", "out", 1e-3)  # 1 mA injected into 'out'
        c.add_resistor("R1", "out", "0", 2e3)
        sol = dc_operating_point(c)
        assert sol["out"] == pytest.approx(2.0, rel=1e-6)

    def test_superposition_of_sources(self):
        c = Circuit("super")
        c.add_voltage_source("V1", "a", "0", 5.0)
        c.add_current_source("I1", "0", "b", 1e-3)
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        sol = dc_operating_point(c)
        # Node b: (5/1k + 1mA) / (1/1k + 1/1k) = 3 V
        assert sol["b"] == pytest.approx(3.0, rel=1e-6)

    def test_vccs_gain(self):
        c = Circuit("vccs")
        c.add_voltage_source("VC", "ctl", "0", 2.0)
        c.add_vccs("G1", "0", "out", "ctl", "0", 1e-3)  # injects gm*Vctl into out
        c.add_resistor("RL", "out", "0", 1e3)
        sol = dc_operating_point(c)
        assert sol["out"] == pytest.approx(2.0, rel=1e-6)

    def test_vcvs_gain(self):
        c = Circuit("vcvs")
        c.add_voltage_source("VC", "ctl", "0", 0.5)
        c.add_vcvs("E1", "out", "0", "ctl", "0", 4.0)
        c.add_resistor("RL", "out", "0", 1e3)
        sol = dc_operating_point(c)
        assert sol["out"] == pytest.approx(2.0, rel=1e-6)

    def test_diode_forward_drop(self):
        c = Circuit("diode")
        c.add_voltage_source("V1", "in", "0", 5.0)
        c.add_resistor("R1", "in", "d", 1e3)
        c.add_diode("D1", "d", "0")
        sol = dc_operating_point(c)
        assert 0.4 < sol["d"] < 0.8  # typical silicon forward drop

    def test_capacitor_is_open_at_dc(self):
        c = Circuit("capdc")
        c.add_voltage_source("V1", "in", "0", 1.0)
        c.add_resistor("R1", "in", "out", 1e3)
        c.add_capacitor("C1", "out", "0", 1e-12)
        sol = dc_operating_point(c)
        assert sol["out"] == pytest.approx(1.0, rel=1e-3)

    def test_inductor_is_short_at_dc(self):
        c = Circuit("inddc")
        c.add_voltage_source("V1", "in", "0", 1.0)
        c.add_resistor("R1", "in", "mid", 1e3)
        c.add_inductor("L1", "mid", "out", 1e-9)
        c.add_resistor("R2", "out", "0", 1e3)
        sol = dc_operating_point(c)
        assert sol["out"] == pytest.approx(0.5, rel=1e-6)
        assert sol["mid"] == pytest.approx(0.5, rel=1e-6)


class TestValidation:
    def test_duplicate_element_names_rejected(self):
        c = Circuit("dups")
        c.add_resistor("R1", "a", "b", 1.0)
        with pytest.raises(ValueError):
            c.add_resistor("R1", "b", "c", 1.0)

    def test_negative_resistance_rejected(self):
        c = Circuit("bad")
        with pytest.raises(ValueError):
            c.add_resistor("R1", "a", "0", -5.0)

    def test_negative_capacitance_rejected(self):
        c = Circuit("bad")
        with pytest.raises(ValueError):
            c.add_capacitor("C1", "a", "0", -1e-15)

    def test_ground_aliases(self):
        c = Circuit("gnd")
        assert c.node("0") == c.node("gnd") == c.node("VSS") == -1
        assert c.node("a") == c.node("A")

    def test_node_bookkeeping(self):
        c = Circuit("nodes")
        c.add_resistor("R1", "a", "b", 1.0)
        c.add_resistor("R2", "b", "0", 1.0)
        assert c.num_nodes == 2
        assert c.has_node("a") and c.has_node("0")
        assert not c.has_node("zz")
        with pytest.raises(KeyError):
            c.node_index("zz")

    def test_summary_and_lookup(self):
        c = Circuit("look")
        c.add_resistor("R1", "a", "0", 1.0)
        assert "R1" in c
        assert c["R1"].resistance == 1.0
        assert c.get("nope") is None
        assert "1 Resistor" in c.summary()

    def test_source_current_requires_voltage_source(self):
        c = Circuit("src")
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "0", 1.0)
        sol = dc_operating_point(c)
        with pytest.raises(TypeError):
            sol.source_current("R1")

    def test_merge_copies_elements_with_prefix(self):
        inner = Circuit("inner")
        inner.add_resistor("R1", "in", "out", 1e3)
        inner.add_capacitor("C1", "out", "0", 1e-15)
        outer = Circuit("outer")
        outer.add_voltage_source("V1", "top", "0", 1.0)
        outer.merge(inner, prefix="x1.", node_map={"in": "top"})
        assert "x1.R1" in outer
        sol = dc_operating_point(outer)
        assert sol["x1.out"] == pytest.approx(1.0, rel=1e-3)


class TestDCSolutionAccessors:
    def test_voltages_dict(self):
        c = Circuit("dict")
        c.add_voltage_source("V1", "a", "0", 2.0)
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        sol = dc_operating_point(c)
        voltages = sol.voltages()
        assert voltages["b"] == pytest.approx(1.0, rel=1e-6)
        assert sol.voltage("0") == 0.0


@given(
    r1=st.floats(min_value=10.0, max_value=1e6),
    r2=st.floats(min_value=10.0, max_value=1e6),
    v=st.floats(min_value=-10.0, max_value=10.0),
)
@settings(max_examples=40, deadline=None)
def test_property_divider_matches_formula(r1, r2, v):
    c = Circuit("pdiv")
    c.add_voltage_source("V1", "in", "0", v)
    c.add_resistor("R1", "in", "mid", r1)
    c.add_resistor("R2", "mid", "0", r2)
    sol = dc_operating_point(c)
    assert sol["mid"] == pytest.approx(v * r2 / (r1 + r2), rel=1e-6, abs=1e-9)


@given(
    conductances=st.lists(st.floats(min_value=1e-6, max_value=1e-2), min_size=1, max_size=5),
    current=st.floats(min_value=-1e-3, max_value=1e-3),
)
@settings(max_examples=40, deadline=None)
def test_property_parallel_resistors_kcl(conductances, current):
    """Injected current splits over parallel conductances; V = I / sum(G)."""
    c = Circuit("par")
    c.add_current_source("I1", "0", "n", current)
    for index, g in enumerate(conductances):
        c.add_resistor(f"R{index}", "n", "0", 1.0 / g)
    sol = dc_operating_point(c)
    assert sol["n"] == pytest.approx(current / sum(conductances), rel=1e-6, abs=1e-9)
