"""Transient analysis tests against analytic RC/RL responses."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    PiecewiseLinear,
    PulseWaveform,
    SaturatedRamp,
    SineWaveform,
    TriangularGlitch,
    ExponentialGlitch,
    transient,
)
from repro.units import fF, ps


def rc_step_circuit(r=1e3, c=100e-15, v=1.0, delay=ps(10)):
    circuit = Circuit("rc")
    circuit.add_voltage_source("V1", "in", "0", PulseWaveform(0.0, v, delay=delay, rise=ps(0.5)))
    circuit.add_resistor("R1", "in", "out", r)
    circuit.add_capacitor("C1", "out", "0", c)
    return circuit


class TestRCStep:
    def test_time_constant(self):
        r, c, v = 1e3, 100e-15, 1.0
        circuit = rc_step_circuit(r, c, v)
        result = transient(circuit, t_stop=ps(800), dt=ps(1))
        tau = r * c
        t0 = ps(10.5)
        out = result["out"]
        assert out.value_at(t0 + tau) == pytest.approx(v * (1 - np.exp(-1)), rel=0.02)
        assert out.value_at(t0 + 3 * tau) == pytest.approx(v * (1 - np.exp(-3)), rel=0.02)
        assert out.values[-1] == pytest.approx(v, rel=0.01)

    def test_backward_euler_also_converges(self):
        circuit = rc_step_circuit()
        result = transient(circuit, t_stop=ps(800), dt=ps(1), method="be")
        assert result["out"].values[-1] == pytest.approx(1.0, rel=0.02)

    def test_finer_steps_reduce_error(self):
        r, c = 1e3, 100e-15
        tau = r * c
        errors = []
        for dt in (ps(10), ps(2)):
            result = transient(rc_step_circuit(r, c), t_stop=ps(600), dt=dt)
            value = result["out"].value_at(ps(10.5) + tau)
            errors.append(abs(value - (1 - np.exp(-1))))
        assert errors[1] < errors[0]

    def test_initial_conditions_uic(self):
        circuit = Circuit("ic")
        circuit.add_resistor("R1", "out", "0", 1e3)
        circuit.add_capacitor("C1", "out", "0", 100e-15)
        result = transient(
            circuit, t_stop=ps(500), dt=ps(1), uic=True, initial_conditions={"out": 1.0}
        )
        tau = 1e3 * 100e-15
        assert result["out"].value_at(tau) == pytest.approx(np.exp(-1), rel=0.02)
        assert result["out"].values[-1] == pytest.approx(0.0, abs=0.02)

    def test_branch_current_waveform(self):
        circuit = rc_step_circuit()
        result = transient(circuit, t_stop=ps(200), dt=ps(1))
        current = result.branch_current("V1")
        # Just after the step the full 1 V sits across 1 kohm: 1 mA out of
        # the source (negative by the +-through-source convention).
        assert current.min() == pytest.approx(-1e-3, rel=0.05)

    def test_invalid_arguments(self):
        circuit = rc_step_circuit()
        with pytest.raises(ValueError):
            transient(circuit, t_stop=0.0, dt=ps(1))
        with pytest.raises(ValueError):
            transient(circuit, t_stop=ps(10), dt=ps(20))
        with pytest.raises(ValueError):
            transient(circuit, t_stop=ps(10), dt=ps(1), method="rk4")

    def test_result_accessors(self):
        circuit = rc_step_circuit()
        result = transient(circuit, t_stop=ps(100), dt=ps(1))
        assert result.num_steps >= 100
        assert "out" in result.final_voltages()
        assert result.voltage_at("out", ps(50)) >= 0.0
        assert result["0"].max() == 0.0
        with pytest.raises(TypeError):
            result.branch_current("R1")


class TestCouplingAndConservation:
    def test_capacitive_divider_coupling(self):
        """A step coupled through Cc into a grounded Cg divides as Cc/(Cc+Cg)."""
        circuit = Circuit("capdiv")
        circuit.add_voltage_source(
            "V1", "agg", "0", PulseWaveform(0.0, 1.0, delay=ps(10), rise=ps(1))
        )
        circuit.add_capacitor("CC", "agg", "vic", fF(40))
        circuit.add_capacitor("CG", "vic", "0", fF(60))
        # A large resistor slowly bleeds the victim back to ground.
        circuit.add_resistor("RH", "vic", "0", 1e9)
        result = transient(circuit, t_stop=ps(30), dt=ps(0.5))
        assert result["vic"].max() == pytest.approx(0.4, rel=0.03)

    def test_rc_charge_conservation(self):
        """The charge delivered by the source equals C * V at the end."""
        r, c = 1e3, 200e-15
        circuit = rc_step_circuit(r, c, v=1.0)
        result = transient(circuit, t_stop=ps(2000), dt=ps(1))
        current = result.branch_current("V1")
        delivered = -current.integral()  # + -> - source convention
        assert delivered == pytest.approx(c * 1.0, rel=0.03)

    def test_inductor_lr_rise(self):
        circuit = Circuit("lr")
        circuit.add_voltage_source("V1", "in", "0", PulseWaveform(0.0, 1.0, delay=ps(10), rise=ps(1)))
        circuit.add_inductor("L1", "in", "mid", 1e-9)
        circuit.add_resistor("R1", "mid", "0", 100.0)
        result = transient(circuit, t_stop=ps(100), dt=ps(0.5))
        tau = 1e-9 / 100.0  # 10 ps
        assert result["mid"].value_at(ps(11) + tau) == pytest.approx(1 - np.exp(-1), rel=0.05)


class TestSources:
    def test_pwl_source(self):
        circuit = Circuit("pwl")
        circuit.add_voltage_source(
            "V1", "a", "0", PiecewiseLinear(((ps(0), 0.0), (ps(100), 1.0), (ps(200), 0.5)))
        )
        circuit.add_resistor("R1", "a", "0", 1e3)
        result = transient(circuit, t_stop=ps(300), dt=ps(1))
        assert result["a"].value_at(ps(50)) == pytest.approx(0.5, rel=0.02)
        assert result["a"].value_at(ps(250)) == pytest.approx(0.5, rel=0.02)

    def test_saturated_ramp_source(self):
        ramp = SaturatedRamp(0.0, 1.2, delay=ps(100), transition=ps(50))
        assert ramp(ps(99)) == 0.0
        assert ramp(ps(125)) == pytest.approx(0.6)
        assert ramp(ps(200)) == pytest.approx(1.2)
        assert ramp.reversed()(ps(200)) == pytest.approx(0.0)
        assert ramp.slew == pytest.approx(ps(50))

    def test_triangular_and_exponential_glitch_sources(self):
        tri = TriangularGlitch(baseline=1.2, height=-0.5, delay=ps(100), rise=ps(50), fall=ps(50))
        assert tri(ps(150)) == pytest.approx(0.7)
        assert tri(ps(250)) == pytest.approx(1.2)
        assert tri.width == pytest.approx(ps(100))
        assert tri.area == pytest.approx(0.5 * -0.5 * ps(100))

        exp = ExponentialGlitch(baseline=0.0, height=0.4, delay=ps(50), tau_rise=ps(20), tau_fall=ps(80))
        peak_time = exp.t_interesting()[1]
        assert exp(peak_time) == pytest.approx(0.4, rel=1e-6)
        assert exp(ps(49)) == 0.0

    def test_sine_source(self):
        sine = SineWaveform(offset=0.5, amplitude=0.1, frequency=1e9)
        assert sine(0.0) == pytest.approx(0.5)
        assert sine(0.25e-9) == pytest.approx(0.6, rel=1e-6)

    def test_pulse_periodicity(self):
        pulse = PulseWaveform(0.0, 1.0, delay=0.0, rise=ps(1), fall=ps(1), width=ps(10), period=ps(50))
        assert pulse(ps(5)) == pytest.approx(1.0)
        assert pulse(ps(55)) == pytest.approx(1.0)
        assert pulse(ps(30)) == pytest.approx(0.0)

    def test_source_validation(self):
        with pytest.raises(ValueError):
            SaturatedRamp(0.0, 1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            TriangularGlitch(0.0, 1.0, 0.0, 0.0, ps(10))
        with pytest.raises(ValueError):
            ExponentialGlitch(0.0, 1.0, 0.0, ps(50), ps(20))
        with pytest.raises(ValueError):
            PiecewiseLinear(((0.0, 1.0), (0.0, 2.0)))
