"""Differential batched-vs-sequential verification suite.

The sequential :func:`~repro.circuit.transient.transient` path is the test
oracle; this suite drives :class:`~repro.circuit.batched.BatchedTransientSolver`
against it on property-based random linear RC networks.  Agreement is
required at 1e-12 V -- the stacked triangular solve is the same LAPACK
routine applied column by column, so batching must be numerically invisible.
Also covers the grouping/fallback logic, the FactorizationCache LRU and the
LRU bound on the stepper's per-(dt, method) solver cache.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, SaturatedRamp, transient
from repro.circuit.mosfet import MOSFETParams
from repro.circuit.batched import (
    BATCHING_MODES,
    BatchedTransientSolver,
    FactorizationCache,
    TransientJob,
)
from repro.circuit.stamping import _BASE_CACHE_SIZE, LinearTransientStepper
from repro.units import fF, ps

#: Batched and sequential must agree to this tolerance on every path.
MAX_DV = 1e-12


# ---------------------------------------------------------------------------
# Builders: same-topology scenario families (only source/element values vary)
# ---------------------------------------------------------------------------

def rc_chain(seed, num_nodes, amplitude, *, couple=True, name=None):
    """A deterministic RC chain whose *drive amplitude* varies per scenario.

    Every circuit built with the same ``(seed, num_nodes, couple)`` shares
    one COO pattern and one set of static stamp values -- the Monte-Carlo
    shape the batched core groups on -- while ``amplitude`` only moves the
    right-hand side.
    """
    rng = np.random.default_rng(seed)
    circuit = Circuit(name or f"chain_{seed}_{num_nodes}_{amplitude:.6f}")
    circuit.add_voltage_source(
        "VTH",
        "drv",
        "0",
        SaturatedRamp(
            0.0,
            amplitude,
            delay=ps(float(rng.uniform(10, 40))),
            transition=ps(float(rng.uniform(20, 60))),
        ),
    )
    circuit.add_resistor("RTH", "drv", "n0", float(rng.uniform(50, 300)))
    for i in range(num_nodes - 1):
        circuit.add_resistor(f"R{i}", f"n{i}", f"n{i + 1}", float(rng.uniform(30, 250)))
        circuit.add_capacitor(
            f"C{i}", f"n{i + 1}", "0", float(rng.uniform(0.5, 4.0)) * fF(1)
        )
    if couple and num_nodes >= 3:
        circuit.add_capacitor("CX", "n0", f"n{num_nodes - 1}", fF(1.5))
    circuit.add_resistor("RHOLD", f"n{num_nodes - 1}", "0", 5e4)
    return circuit


_NMOS = MOSFETParams(polarity="n", vto=0.35, kp=3e-4, lambda_=0.06)


def nonlinear_chain(amplitude):
    """A chain with a MOSFET load (nonlinear: must fall back to sequential)."""
    circuit = rc_chain(7, 4, amplitude, name=f"nl_{amplitude:.6f}")
    circuit.add_voltage_source("VDD", "vdd", "0", 1.2)
    circuit.add_resistor("RL", "vdd", "out", 2e3)
    circuit.add_mosfet("MN", "out", "n3", "0", _NMOS, w=1e-6)
    circuit.add_capacitor("CL", "out", "0", fF(2))
    return circuit


def _max_diff(a, b):
    assert a.times.shape == b.times.shape
    np.testing.assert_array_equal(a.times, b.times)
    return float(np.max(np.abs(a.solutions - b.solutions)))


def _run_batched(jobs, **kwargs):
    solver = BatchedTransientSolver(**kwargs)
    return solver, solver.run(jobs)


# ---------------------------------------------------------------------------
# Property-based differential tests
# ---------------------------------------------------------------------------

class TestBatchedMatchesSequential:
    @given(
        seed=st.integers(0, 10_000),
        num_nodes=st.integers(3, 16),
        group_size=st.integers(2, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_topology_group(self, seed, num_nodes, group_size):
        """A Monte-Carlo-style family batches into one group and agrees."""
        rng = np.random.default_rng(seed + 99)
        amplitudes = [float(rng.uniform(0.4, 1.4)) for _ in range(group_size)]
        jobs = [
            TransientJob(rc_chain(seed, num_nodes, a), t_stop=ps(200), dt=ps(2))
            for a in amplitudes
        ]
        solver, results = _run_batched(jobs, backend="dense")
        assert solver.last_run.batch_groups == 1
        assert solver.last_run.batched_jobs == group_size
        assert solver.last_run.sequential_jobs == 0
        for amplitude, result in zip(amplitudes, results):
            reference = transient(
                rc_chain(seed, num_nodes, amplitude),
                t_stop=ps(200),
                dt=ps(2),
                backend="dense",
            )
            assert _max_diff(result, reference) <= MAX_DV

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_mixed_topology_groups(self, seed):
        """Different topologies land in different groups, all still agree."""
        jobs = [
            TransientJob(rc_chain(seed, 4, 0.9), t_stop=ps(150), dt=ps(2)),
            TransientJob(rc_chain(seed, 7, 1.1), t_stop=ps(150), dt=ps(2)),
            TransientJob(rc_chain(seed, 4, 1.2), t_stop=ps(150), dt=ps(2)),
            TransientJob(rc_chain(seed + 1, 4, 0.9, couple=False), t_stop=ps(150), dt=ps(2)),
        ]
        solver, results = _run_batched(jobs, backend="dense")
        assert solver.last_run.batch_groups == 3  # 4-node pair, 7-node, uncoupled
        references = [
            transient(circuit, t_stop=ps(150), dt=ps(2), backend="dense")
            for circuit in (
                rc_chain(seed, 4, 0.9),
                rc_chain(seed, 7, 1.1),
                rc_chain(seed, 4, 1.2),
                rc_chain(seed + 1, 4, 0.9, couple=False),
            )
        ]
        for result, reference in zip(results, references):
            assert _max_diff(result, reference) <= MAX_DV

    @given(seed=st.integers(0, 10_000), method=st.sampled_from(["trap", "be"]))
    @settings(max_examples=15, deadline=None)
    def test_single_member_group_is_bitwise(self, seed, method):
        """A group of one takes the 1-D RHS path: bitwise-equal to sequential."""
        job = TransientJob(
            rc_chain(seed, 5, 1.0), t_stop=ps(120), dt=ps(2), method=method
        )
        solver, (result,) = _run_batched([job], backend="dense")
        assert solver.last_run.batch_groups == 1
        assert solver.last_run.batched_solves == 0  # no stacking for k == 1
        reference = transient(
            rc_chain(seed, 5, 1.0), t_stop=ps(120), dt=ps(2),
            method=method, backend="dense",
        )
        np.testing.assert_array_equal(result.solutions, reference.solutions)

    @given(seed=st.integers(0, 5_000), num_nodes=st.integers(4, 12))
    @settings(max_examples=10, deadline=None)
    def test_sparse_backend_group_agrees(self, seed, num_nodes):
        jobs = [
            TransientJob(rc_chain(seed, num_nodes, a), t_stop=ps(150), dt=ps(2))
            for a in (0.6, 0.9, 1.2)
        ]
        _, results = _run_batched(jobs, backend="sparse")
        for amplitude, result in zip((0.6, 0.9, 1.2), results):
            assert result.stats.backend == "sparse"
            reference = transient(
                rc_chain(seed, num_nodes, amplitude),
                t_stop=ps(150), dt=ps(2), backend="sparse",
            )
            assert _max_diff(result, reference) <= MAX_DV


# ---------------------------------------------------------------------------
# Grouping / fallback logic
# ---------------------------------------------------------------------------

class TestRoutingAndStats:
    def test_nonlinear_jobs_fall_back_to_sequential(self):
        jobs = [
            TransientJob(rc_chain(3, 4, 1.0), t_stop=ps(100), dt=ps(2)),
            TransientJob(nonlinear_chain(1.0), t_stop=ps(100), dt=ps(2)),
            TransientJob(rc_chain(3, 4, 0.8), t_stop=ps(100), dt=ps(2)),
        ]
        solver, results = _run_batched(jobs, backend="dense")
        assert solver.last_run.sequential_jobs == 1
        assert solver.last_run.batched_jobs == 2
        assert len(results) == 3
        nl_reference = transient(
            nonlinear_chain(1.0), t_stop=ps(100), dt=ps(2), backend="dense"
        )
        assert _max_diff(results[1], nl_reference) <= MAX_DV
        assert results[1].stats.newton_iterations > 0

    def test_batching_off_runs_everything_sequentially(self):
        jobs = [
            TransientJob(rc_chain(3, 4, a), t_stop=ps(100), dt=ps(2))
            for a in (0.7, 1.0)
        ]
        solver, results = _run_batched(jobs, backend="dense", batching="off")
        assert solver.last_run.batch_groups == 0
        assert solver.last_run.sequential_jobs == 2
        for a, result in zip((0.7, 1.0), results):
            reference = transient(
                rc_chain(3, 4, a), t_stop=ps(100), dt=ps(2), backend="dense"
            )
            np.testing.assert_array_equal(result.solutions, reference.solutions)

    def test_rejects_unknown_batching_mode(self):
        assert "auto" in BATCHING_MODES and "off" in BATCHING_MODES
        with pytest.raises(ValueError, match="batching"):
            BatchedTransientSolver(batching="maybe")

    def test_group_stats_count_factorizations_saved(self):
        jobs = [
            TransientJob(rc_chain(11, 6, a), t_stop=ps(100), dt=ps(2))
            for a in (0.5, 0.8, 1.1, 1.4)
        ]
        solver, results = _run_batched(jobs, backend="dense")
        stats = solver.last_run
        # One factorization per distinct quantized dt (ramp breakpoints make
        # the axis non-uniform); each is reused by the three other members.
        built = results[0].stats.matrix_factorizations
        assert built >= 1
        assert stats.factorizations_built == built
        assert stats.factorizations_saved == built * 3
        assert stats.batched_solves == len(results[0].times) - 1
        # Per-member stats follow the lead-member convention: only the lead
        # carries the factorization count.
        assert all(r.stats.matrix_factorizations == 0 for r in results[1:])
        assert all(r.stats.factorizations_saved == built for r in results[1:])
        assert all(r.stats.batch_groups == 1 for r in results)
        assert all(r.stats.fast_path for r in results)

    def test_different_time_axes_do_not_group(self):
        jobs = [
            TransientJob(rc_chain(5, 4, 1.0), t_stop=ps(100), dt=ps(2)),
            TransientJob(rc_chain(5, 4, 1.0), t_stop=ps(200), dt=ps(2)),
        ]
        solver, _ = _run_batched(jobs, backend="dense")
        assert solver.last_run.batch_groups == 2


# ---------------------------------------------------------------------------
# FactorizationCache
# ---------------------------------------------------------------------------

class TestFactorizationCache:
    def test_cross_run_reuse_and_counters(self):
        cache = FactorizationCache()
        jobs = [
            TransientJob(rc_chain(9, 5, a), t_stop=ps(100), dt=ps(2))
            for a in (0.6, 1.0, 1.3)
        ]
        solver = BatchedTransientSolver(backend="dense", cache=cache)
        first = solver.run(jobs)
        built = solver.last_run.factorizations_built  # one per distinct dt
        assert built >= 1
        assert cache.entries_created == built
        assert cache.hits == 0
        second = solver.run(
            [
                TransientJob(rc_chain(9, 5, a), t_stop=ps(100), dt=ps(2))
                for a in (0.6, 1.0, 1.3)
            ]
        )
        # Second run: every base matrix comes straight from the cache.
        assert solver.last_run.factorizations_built == 0
        assert cache.hits == built
        assert cache.counters()["factorizations_saved"] == built
        assert cache.counters()["batch_groups"] == built
        assert cache.stacked_solves > 0
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.solutions, b.solutions)

    def test_lru_bound_evicts_oldest(self):
        cache = FactorizationCache(max_entries=2)
        for key in ("k1", "k2", "k3"):
            cache.solver((key,), lambda: object())
        assert len(cache) == 2
        # k1 was evicted: looking it up again rebuilds instead of hitting.
        _, hit = cache.solver(("k1",), lambda: object())
        assert not hit
        _, hit = cache.solver(("k3",), lambda: object())
        assert hit

    def test_lru_touch_on_hit(self):
        cache = FactorizationCache(max_entries=2)
        cache.solver(("a",), lambda: object())
        cache.solver(("b",), lambda: object())
        cache.solver(("a",), lambda: object())  # touch "a"
        cache.solver(("c",), lambda: object())  # evicts "b", not "a"
        _, hit = cache.solver(("a",), lambda: object())
        assert hit
        _, hit = cache.solver(("b",), lambda: object())
        assert not hit


# ---------------------------------------------------------------------------
# Stepper solver-cache LRU bound (satellite of the same PR)
# ---------------------------------------------------------------------------

class TestStepperSolverCacheBound:
    @staticmethod
    def _stepper():
        circuit = rc_chain(2, 4, 1.0)
        circuit.prepare()
        stepper = LinearTransientStepper(
            circuit.kernel, method="trap", gmin=circuit.gmin, backend="dense"
        )
        stepper.initialize(np.zeros(circuit.kernel.n))
        return circuit, stepper

    def test_per_dt_solver_cache_is_bounded(self):
        _, stepper = self._stepper()
        for i in range(_BASE_CACHE_SIZE + 8):
            stepper._solver(ps(1) * (1.0 + 0.01 * i))  # distinct dts
        assert len(stepper._solvers) <= _BASE_CACHE_SIZE

    def test_eviction_rebuild_is_bitwise_identical(self):
        """Re-acquiring an evicted dt refactorises the same matrix exactly."""
        circuit, stepper = self._stepper()
        rng = np.random.default_rng(0)
        z = rng.normal(size=circuit.kernel.n)
        before = stepper._solver(ps(2)).solve(z)
        # Thrash the cache with enough distinct dts to evict ps(2).
        for i in range(_BASE_CACHE_SIZE + 4):
            stepper._solver(ps(3) * (1.0 + 0.01 * i))
        after = stepper._solver(ps(2)).solve(z)
        np.testing.assert_array_equal(before, after)
