"""Deprecation shims: old facades warn but return identical results."""

import warnings

import pytest

from repro.api import AnalysisConfig, NoiseAnalysisSession
from repro.interconnect import ParallelBusGeometry
from repro.noise import (
    AggressorSpec,
    ClusterNoiseAnalyzer,
    InputGlitchSpec,
    NoiseClusterSpec,
    VictimSpec,
)
from repro.sna import Design, ExtractionConfig, StaticNoiseAnalysisFlow
from repro.technology import build_default_library
from repro.units import ps


@pytest.fixture(scope="module")
def library():
    return build_default_library("cmos130")


@pytest.fixture(scope="module")
def small_cluster():
    geometry = ParallelBusGeometry.two_parallel_wires(length_um=300.0, layer_index=4)
    return NoiseClusterSpec(
        victim=VictimSpec(
            net="victim",
            driver_cell="NAND2_X1",
            output_high=False,
            input_glitch=InputGlitchSpec(height=0.9, width=ps(200), start_time=ps(120)),
            receiver_cell="INV_X1",
        ),
        aggressors=[
            AggressorSpec(
                net="aggressor",
                driver_cell="INV_X2",
                rising=True,
                input_transition=ps(40),
                switch_time=ps(150),
            )
        ],
        geometry=geometry,
        num_segments=6,
        name="deprecation_cluster",
    )


@pytest.fixture(scope="module")
def design(library):
    design = Design("depchip", library)
    for pin in ("a", "b", "c"):
        design.add_primary_input(pin)
    design.add_net("n1", length_um=350, layer_index=4)
    design.add_net("n2", length_um=350, layer_index=4)
    design.add_instance("u1", "NAND2_X1", {"A": "a", "B": "b", "Z": "n1"})
    design.add_instance("u2", "INV_X2", {"A": "c", "Z": "n2"})
    design.add_instance("r1", "INV_X1", {"A": "n1", "Z": "o1"})
    design.add_instance("r2", "INV_X1", {"A": "n2", "Z": "o2"})
    design.add_coupling("n1", "n2", 300.0)
    return design


class TestClusterNoiseAnalyzerShim:
    def test_old_signature_warns_and_matches_session(self, library, small_cluster):
        analyzer = ClusterNoiseAnalyzer(library, vccs_grid=13)
        with pytest.warns(DeprecationWarning, match="NoiseAnalysisSession.analyze"):
            old = analyzer.analyze(
                small_cluster, methods=("macromodel", "superposition"), dt=ps(2)
            )

        session = NoiseAnalysisSession(
            library, AnalysisConfig(vccs_grid=13, check_nrc=False)
        )
        new = session.analyze(
            small_cluster, methods=("macromodel", "superposition"), dt=ps(2)
        )

        # Same result-dict shape as the pre-API facade...
        assert set(old) == {"macromodel", "superposition"}
        # ... and numerically identical values through either entry point.
        for name in old:
            assert old[name].peak == pytest.approx(new.results[name].peak, rel=1e-12)
            assert old[name].area_v_ps == pytest.approx(
                new.results[name].area_v_ps, rel=1e-12
            )

    def test_positional_methods_argument_still_accepted(self, library, small_cluster):
        analyzer = ClusterNoiseAnalyzer(library, vccs_grid=13)
        with pytest.warns(DeprecationWarning):
            results = analyzer.analyze(small_cluster, ("macromodel",), dt=ps(2))
        assert list(results) == ["macromodel"]

    def test_unknown_method_still_a_value_error(self, library, small_cluster):
        analyzer = ClusterNoiseAnalyzer(library, vccs_grid=13)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="spice"):
                analyzer.analyze(small_cluster, methods=("spice",))

    def test_registry_backs_the_shim(self, library):
        """No if/elif dispatch: the shim resolves methods via the registry."""
        from repro.api import register_method, unregister_method

        calls = []

        class _Probe:
            method_name = "probe"

            def analyze(self, spec, *, dt=None, t_stop=None, builder=None):
                calls.append(spec.name)
                from repro.noise import MacromodelAnalysis

                return MacromodelAnalysis(library, vccs_grid=13).analyze(
                    spec, dt=dt, t_stop=t_stop, builder=builder
                )

        register_method("probe")(lambda ctx: _Probe())
        try:
            analyzer = ClusterNoiseAnalyzer(library, vccs_grid=13)
            geometry = ParallelBusGeometry.two_parallel_wires(length_um=200.0)
            spec = NoiseClusterSpec(
                victim=VictimSpec(net="victim", driver_cell="INV_X1", output_high=False),
                aggressors=[AggressorSpec(net="aggressor", driver_cell="INV_X1")],
                geometry=geometry,
                num_segments=4,
                name="probe_cluster",
            )
            with pytest.warns(DeprecationWarning):
                results = analyzer.analyze(spec, methods=("probe",), dt=ps(2))
            assert calls == ["probe_cluster"]
            assert "probe" in results
        finally:
            unregister_method("probe")


class TestStaticNoiseAnalysisFlowShim:
    def test_run_warns_and_matches_run_design(self, library, design):
        glitches = {"n1": InputGlitchSpec(height=0.8, width=ps(200), start_time=ps(120))}
        flow = StaticNoiseAnalysisFlow(design, num_segments=4, input_glitches=glitches)
        with pytest.warns(DeprecationWarning, match="run_design"):
            old = flow.run(method="macromodel", check_nrc=False, dt=ps(2))

        session = NoiseAnalysisSession(library, AnalysisConfig(check_nrc=False))
        new = session.run_design(
            design,
            extraction=ExtractionConfig(num_segments=4),
            input_glitches=glitches,
            methods=("macromodel",),
            dt=ps(2),
        )

        assert [net.victim_net for net in old.nets] == [
            cluster.victim_net for cluster in new.clusters
        ]
        for net, cluster in zip(old.nets, new.clusters):
            assert net.peak == pytest.approx(cluster.primary.peak, rel=1e-12)
            assert net.area_v_ps == pytest.approx(cluster.primary.area_v_ps, rel=1e-12)
        # The old report type and text layout are preserved.
        assert "Static noise analysis report" in old.text()

    def test_extraction_passthroughs_do_not_warn(self, design):
        flow = StaticNoiseAnalysisFlow(design, num_segments=4, max_aggressors=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            candidates = flow.victim_candidates()
            extraction = flow.extract_cluster("n1")
        assert candidates == ["n1", "n2"]
        assert extraction.victim_net == "n1"
        assert flow.num_segments == 4
        assert flow.max_aggressors == 1
