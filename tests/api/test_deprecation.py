"""Retired 0.1-era facades fail loudly with their migration path."""

import warnings

import pytest

from repro.api import AnalysisConfig, NoiseAnalysisSession, RemovedAPIError
from repro.noise import ClusterNoiseAnalyzer
from repro.sna import Design, ExtractionConfig, StaticNoiseAnalysisFlow
from repro.technology import build_default_library
from repro.units import ps


@pytest.fixture(scope="module")
def library():
    return build_default_library("cmos130")


@pytest.fixture(scope="module")
def design(library):
    design = Design("depchip", library)
    for pin in ("a", "b", "c"):
        design.add_primary_input(pin)
    design.add_net("n1", length_um=350, layer_index=4)
    design.add_net("n2", length_um=350, layer_index=4)
    design.add_instance("u1", "NAND2_X1", {"A": "a", "B": "b", "Z": "n1"})
    design.add_instance("u2", "INV_X2", {"A": "c", "Z": "n2"})
    design.add_instance("r1", "INV_X1", {"A": "n1", "Z": "o1"})
    design.add_instance("r2", "INV_X1", {"A": "n2", "Z": "o2"})
    design.add_coupling("n1", "n2", 300.0)
    return design


class TestClusterNoiseAnalyzerRemoved:
    def test_constructor_raises_with_migration_path(self, library):
        with pytest.raises(RemovedAPIError, match="NoiseAnalysisSession"):
            ClusterNoiseAnalyzer(library, vccs_grid=13)

    def test_error_names_the_removed_api_and_api_md(self, library):
        with pytest.raises(RemovedAPIError, match="ClusterNoiseAnalyzer") as excinfo:
            ClusterNoiseAnalyzer(library)
        assert "API.md" in str(excinfo.value)
        assert excinfo.value.replacement == "repro.api.NoiseAnalysisSession"

    def test_removal_error_is_a_runtime_error(self, library):
        # Old call sites catching broad RuntimeError keep their behaviour.
        with pytest.raises(RuntimeError):
            ClusterNoiseAnalyzer(library)


class TestStaticNoiseAnalysisFlowRunRemoved:
    def test_run_raises_with_migration_path(self, design):
        flow = StaticNoiseAnalysisFlow(design, num_segments=4)
        with pytest.raises(RemovedAPIError, match="run_design"):
            flow.run(method="macromodel", check_nrc=False, dt=ps(2))

    def test_analyzer_property_raises(self, design):
        flow = StaticNoiseAnalysisFlow(design, num_segments=4)
        with pytest.raises(RemovedAPIError, match="NoiseAnalysisSession"):
            flow.analyzer

    def test_extraction_passthroughs_still_work(self, design):
        """The extraction surface survives the run() retirement, warning-free."""
        flow = StaticNoiseAnalysisFlow(design, num_segments=4, max_aggressors=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            candidates = flow.victim_candidates()
            extraction = flow.extract_cluster("n1")
        assert candidates == ["n1", "n2"]
        assert extraction.victim_net == "n1"
        assert flow.num_segments == 4
        assert flow.max_aggressors == 1

    def test_documented_replacement_produces_the_report(self, library, design):
        """The migration path in the run() docstring actually works."""
        flow = StaticNoiseAnalysisFlow(design, num_segments=4)
        report = flow.session.run_design(
            design,
            extractor=flow.extractor,
            methods=("macromodel",),
            dt=ps(2),
            check_nrc=False,
        )
        assert [c.victim_net for c in report.clusters] == ["n1", "n2"]

    def test_session_replacement_standalone(self, library, design):
        session = NoiseAnalysisSession(library, AnalysisConfig(check_nrc=False))
        report = session.run_design(
            design,
            extraction=ExtractionConfig(num_segments=4),
            methods=("macromodel",),
            dt=ps(2),
        )
        assert len(report.clusters) == 2
