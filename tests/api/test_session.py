"""Tests for AnalysisConfig and the unified NoiseAnalysisSession."""

import dataclasses

import pytest

from repro.api import (
    AnalysisConfig,
    ClusterError,
    ClusterReport,
    NoiseAnalysisSession,
    SessionReport,
    UnknownMethodError,
    list_methods,
    register_method,
    unregister_method,
)
from repro.experiments import accuracy_sweep_clusters, paper_session
from repro.noise import InputGlitchSpec
from repro.sna import Design, ExtractionConfig
from repro.technology import build_default_library
from repro.units import ps


@pytest.fixture(scope="module")
def library():
    return build_default_library("cmos130")


@pytest.fixture(scope="module")
def sweep_cases():
    """The cmos130 quick accuracy-sweep set (three clusters, shared cells)."""
    return accuracy_sweep_clusters(technologies=("cmos130",), quick=True)


@pytest.fixture(scope="module")
def session(library):
    return NoiseAnalysisSession(
        library, AnalysisConfig(methods=("macromodel",), vccs_grid=13, check_nrc=False)
    )


class TestAnalysisConfig:
    def test_defaults_and_replace(self):
        config = AnalysisConfig()
        assert config.methods == ("macromodel",)
        assert config.reduction == "coupled_pi"
        derived = config.replace(methods=("golden", "macromodel"), dt=ps(2))
        assert derived.methods == ("golden", "macromodel")
        assert derived.dt == ps(2)
        # The original is frozen and unchanged.
        assert config.methods == ("macromodel",)
        with pytest.raises(AttributeError):
            config.dt = ps(1)

    def test_sequences_normalised_to_tuples(self):
        assert AnalysisConfig(methods=["golden"]).methods == ("golden",)
        # A bare string is one method name, not an iterable of characters.
        assert AnalysisConfig(methods="macromodel").methods == ("macromodel",)
        assert AnalysisConfig(nrc_widths=[ps(100), ps(200)]).nrc_widths == (ps(100), ps(200))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"methods": ()},
            {"dt": 0.0},
            {"dt": -1e-12},
            {"t_stop": 0.0},
            {"dt": ps(10), "t_stop": ps(5)},
            {"reduction": "nosuch"},
            {"vccs_grid": 2},
            {"solver_backend": "gpu"},
            {"max_workers": 0},
            {"nrc_widths": ()},
            {"nrc_widths": (ps(100), -ps(50))},
            {"methods": ("ok", "")},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AnalysisConfig(**kwargs)

    def test_describe_mentions_key_fields(self):
        text = AnalysisConfig(methods=("golden",), max_workers=4).describe()
        assert "golden" in text and "max_workers=4" in text


class TestAnalyze:
    def test_unknown_method_rejected_before_any_work(self, session, sweep_cases):
        with pytest.raises(UnknownMethodError, match="spice"):
            session.analyze(sweep_cases[0].spec, methods=("macromodel", "spice"))

    def test_report_structure(self, session, sweep_cases):
        spec = sweep_cases[0].spec
        report = session.analyze(spec, dt=ps(2))
        assert isinstance(report, ClusterReport)
        assert report.label == spec.name
        assert report.primary_method == "macromodel"
        assert report.primary is report.result("macromodel")
        assert report.runtime_seconds > 0.0
        assert report.engine_statistics().num_time_points > 0
        # NRC checking is off in this session's config.
        assert report.nrc_checks == {} and report.nrc_check() is None and not report.fails

    def test_method_instances_are_cached_per_session(self, session):
        assert session.method("macromodel") is session.method("macromodel")

    def test_session_lists_registry_methods(self, session):
        assert "macromodel" in list_methods()
        assert "registered methods" in session.describe()


class TestAnalyzeMany:
    def test_results_keep_input_order_and_labels(self, session, sweep_cases):
        specs = [case.spec for case in sweep_cases]
        labels = [case.label for case in sweep_cases]
        reports = session.analyze_many(specs, dt=ps(2), labels=labels)
        assert [report.label for report in reports] == labels
        assert [report.spec.name for report in reports] == [spec.name for spec in specs]

    def test_label_count_mismatch_rejected(self, session, sweep_cases):
        with pytest.raises(ValueError, match="labels"):
            session.analyze_many([sweep_cases[0].spec], labels=["a", "b"])

    def test_each_distinct_cell_characterized_exactly_once(self, sweep_cases):
        """The acceptance criterion: one VCCS characterisation per distinct arc."""
        # A fresh library: its characterisation cache must start empty.
        session = NoiseAnalysisSession(
            build_default_library("cmos130"),
            AnalysisConfig(methods=("macromodel",), vccs_grid=13, check_nrc=False),
        )
        specs = [case.spec for case in sweep_cases]
        # The quick cmos130 sweep uses two NAND2_X1(low) victims and one
        # NOR2_X1(high) victim -> exactly two distinct VCCS load surfaces.
        distinct_arcs = {
            (spec.victim.driver_cell, spec.victim.output_high) for spec in specs
        }
        assert len(distinct_arcs) == 2 < len(specs)

        session.analyze_many(specs, dt=ps(2))
        stats = session.characterizer.stats
        assert stats.miss_count("vccs") == len(distinct_arcs)
        # The shared NAND2 surface was a cache hit for the second cluster.
        assert stats.hit_count("vccs") > 0

        # A second batch over the same specs recomputes nothing at all.
        misses_before = dict(stats.misses)
        session.analyze_many(specs, dt=ps(2))
        assert stats.misses == misses_before

    def test_parallel_matches_sequential(self, library, sweep_cases):
        specs = [case.spec for case in sweep_cases]
        sequential = NoiseAnalysisSession(
            library, AnalysisConfig(methods=("macromodel",), vccs_grid=13, check_nrc=False)
        ).analyze_many(specs, dt=ps(2))
        parallel = NoiseAnalysisSession(
            library, AnalysisConfig(methods=("macromodel",), vccs_grid=13, check_nrc=False)
        ).analyze_many(specs, dt=ps(2), max_workers=3)
        assert [report.label for report in parallel] == [report.label for report in sequential]
        for left, right in zip(sequential, parallel):
            assert left.primary.peak == pytest.approx(right.primary.peak, rel=1e-9)
            assert left.primary.area_v_ps == pytest.approx(right.primary.area_v_ps, rel=1e-9)

    def test_invalid_worker_count_rejected(self, session, sweep_cases):
        with pytest.raises(ValueError, match="max_workers"):
            session.analyze_many([sweep_cases[0].spec], max_workers=0)


class TestAnalyzeManyErrorCollection:
    @pytest.fixture()
    def failing_spec(self, sweep_cases):
        """A spec whose victim driver does not exist -> fails at analysis."""
        spec = sweep_cases[0].spec
        return dataclasses.replace(
            spec,
            victim=dataclasses.replace(spec.victim, driver_cell="GHOST_X1"),
            name="ghost_cluster",
        )

    def test_failure_surfaces_as_structured_per_item_error(
        self, session, sweep_cases, failing_spec
    ):
        good = sweep_cases[0].spec
        reports = session.analyze_many([good, failing_spec, good], dt=2e-12)
        assert len(reports) == 3
        assert [report.ok for report in reports] == [True, False, True]
        failed = reports[1]
        assert isinstance(failed.error, ClusterError)
        assert failed.error.exception_type == "KeyError"
        assert "GHOST_X1" in failed.error.message
        assert "GHOST_X1" in failed.error.traceback_text
        assert failed.label == "ghost_cluster"
        assert failed.results == {} and failed.nrc_check() is None
        assert not failed.fails
        assert "ERROR" in failed.summary()
        with pytest.raises(ValueError, match="ghost_cluster"):
            failed.primary_method

    def test_parallel_batch_collects_errors_too(self, session, sweep_cases, failing_spec):
        good = sweep_cases[0].spec
        reports = session.analyze_many(
            [good, failing_spec, good], dt=2e-12, max_workers=3
        )
        assert [report.ok for report in reports] == [True, False, True]
        assert reports[1].error is not None

    def test_on_error_raise_propagates(self, session, sweep_cases, failing_spec):
        with pytest.raises(KeyError, match="GHOST_X1"):
            session.analyze_many(
                [sweep_cases[0].spec, failing_spec], dt=2e-12, on_error="raise"
            )

    def test_invalid_on_error_rejected(self, session, sweep_cases):
        with pytest.raises(ValueError, match="on_error"):
            session.analyze_many([sweep_cases[0].spec], on_error="ignore")

    def test_method_level_failure_collected(self, library, sweep_cases):
        """A registered-but-broken backend fails per cluster, not per batch."""

        class _Broken:
            method_name = "broken"

            def analyze(self, spec, *, dt=None, t_stop=None, builder=None):
                raise RuntimeError(f"backend exploded on {spec.name}")

        register_method("broken", description="always fails")(lambda context: _Broken())
        try:
            session = NoiseAnalysisSession(
                library, AnalysisConfig(methods=("broken",), check_nrc=False)
            )
            reports = session.analyze_many([case.spec for case in sweep_cases])
            assert all(not report.ok for report in reports)
            assert all(
                report.error.exception_type == "RuntimeError" for report in reports
            )
            # The failure is attributed to the backend that raised, and
            # result lookups point at it instead of a bare KeyError.
            assert all(report.error.method == "broken" for report in reports)
            assert "broken" in reports[0].error.summary()
            with pytest.raises(KeyError, match="failed.*RuntimeError"):
                reports[0].result("broken")
        finally:
            unregister_method("broken")

    def test_session_report_text_shows_errors(self, session, sweep_cases, failing_spec):
        reports = session.analyze_many([sweep_cases[0].spec, failing_spec], dt=2e-12)
        report = SessionReport(
            clusters=reports,
            methods=("macromodel",),
            total_runtime_seconds=0.0,
        )
        assert len(report.errors) == 1
        text = report.text()
        assert "ERROR" in text and "errors: 1 / 2" in text
        # A crashed cluster must never read as a clean sign-off, even with
        # zero NRC violations.
        assert not report.violations and not report.ok


class TestRunDesign:
    @pytest.fixture()
    def design(self, library):
        design = Design("apichip", library)
        for pin in ("a", "b", "c"):
            design.add_primary_input(pin)
        design.add_net("n1", length_um=350, layer_index=4)
        design.add_net("n2", length_um=350, layer_index=4)
        design.add_instance("u1", "NAND2_X1", {"A": "a", "B": "b", "Z": "n1"})
        design.add_instance("u2", "INV_X2", {"A": "c", "Z": "n2"})
        design.add_instance("r1", "INV_X1", {"A": "n1", "Z": "o1"})
        design.add_instance("r2", "INV_X1", {"A": "n2", "Z": "o2"})
        design.add_coupling("n1", "n2", 300.0)
        return design

    def test_design_report(self, library, design):
        session = NoiseAnalysisSession(
            library, AnalysisConfig(methods=("macromodel",), vccs_grid=13, check_nrc=False)
        )
        report = session.run_design(
            design,
            extraction=ExtractionConfig(num_segments=4),
            input_glitches={"n1": InputGlitchSpec(height=0.8, width=ps(200), start_time=ps(120))},
            dt=ps(2),
        )
        assert isinstance(report, SessionReport)
        assert report.design_name == "apichip"
        assert [cluster.victim_net for cluster in report] == ["n1", "n2"]
        assert report.cluster("n1").primary.peak > report.cluster("n2").primary.peak
        text = report.text()
        assert "apichip" in text and "violations" in text
        with pytest.raises(KeyError):
            report.cluster("ghost")


class TestPaperSessionHelper:
    def test_builds_configured_session(self):
        session = paper_session("cmos90", methods=("macromodel",), vccs_grid=13)
        assert session.library.technology.name == "cmos90"
        assert session.config.methods == ("macromodel",)
        assert session.config.vccs_grid == 13


class TestSessionSolverCache:
    def test_batching_auto_owns_a_cache(self, library):
        session = NoiseAnalysisSession(library, AnalysisConfig())
        assert session.solver_cache is not None
        off = NoiseAnalysisSession(library, AnalysisConfig(batching="off"))
        assert off.solver_cache is None

    def test_config_rejects_unknown_batching(self):
        with pytest.raises(ValueError, match="batching"):
            AnalysisConfig(batching="sometimes")

    def test_repeat_analysis_reuses_factorizations(self, library, sweep_cases):
        """The second analysis of an identical cluster never factorises."""
        session = NoiseAnalysisSession(
            library,
            AnalysisConfig(methods=("macromodel",), vccs_grid=13, check_nrc=False),
        )
        spec = sweep_cases[0].spec
        first = session.analyze(spec)
        second = session.analyze(spec)
        stats2 = second.engine_statistics()
        assert stats2.factorizations_saved > 0
        assert stats2.matrix_factorizations == 0
        # Reuse is bit-identical: the waveforms cannot move.
        assert second.primary.peak == first.primary.peak
        report_text = SessionReport(
            clusters=[first, second], methods=("macromodel",),
            total_runtime_seconds=0.0,
        ).text()
        assert "saved" in report_text and "batched solves" in report_text

    def test_batching_off_matches_auto(self, library, sweep_cases):
        spec = sweep_cases[0].spec
        config = AnalysisConfig(methods=("macromodel",), vccs_grid=13, check_nrc=False)
        auto = NoiseAnalysisSession(library, config).analyze(spec)
        off = NoiseAnalysisSession(library, config.replace(batching="off")).analyze(spec)
        assert off.primary.peak == auto.primary.peak
        assert off.engine_statistics().factorizations_saved == 0
