"""The versioned wire format round-trips every report type losslessly.

Codec unit tests run on synthetic values; the report round-trip tests run a
*real* analysis (under both solver backends) and assert the re-encoded JSON
strings are byte-identical -- the property the service's dedup store and the
ECO bit-identity guarantee are built on.
"""

import json
import math

import numpy as np
import pytest

from repro.api import AnalysisConfig, NoiseAnalysisSession
from repro.api import wire
from repro.api.report import ClusterError, ClusterReport, SessionReport
from repro.experiments import figure1_cluster
from repro.scenarios.report import ScenarioResult, SweepHealth, SweepReport
from repro.technology import build_default_library
from repro.waveform import Waveform


def round_trip(value):
    """encode -> JSON text -> decode, exercising the real serialisation."""
    return wire.decode(json.loads(json.dumps(wire.encode(value))))


class TestCodec:
    def test_primitives_pass_through(self):
        for value in (None, True, False, 0, -7, 1.5, "text", ""):
            assert round_trip(value) == value
            assert type(round_trip(value)) is type(value)

    def test_tuple_and_list_stay_distinct(self):
        assert round_trip((1, 2, 3)) == (1, 2, 3)
        assert round_trip([1, 2, 3]) == [1, 2, 3]
        nested = ("a", [1, (2.5, None)], {"k": (True,)})
        decoded = round_trip(nested)
        assert decoded == nested
        assert isinstance(decoded[1][1], tuple)
        assert isinstance(decoded[2]["k"], tuple)

    def test_numpy_scalars_become_python(self):
        assert round_trip(np.float64(0.25)) == 0.25
        assert type(round_trip(np.float64(0.25))) is float
        assert round_trip(np.int64(9)) == 9
        assert round_trip(np.bool_(True)) is True

    @pytest.mark.parametrize("dtype", ["float64", "int32", "bool"])
    def test_ndarray_preserves_dtype_and_shape(self, dtype):
        array = np.arange(6).reshape(2, 3).astype(dtype)
        decoded = round_trip(array)
        assert decoded.dtype == np.dtype(dtype)
        assert decoded.shape == (2, 3)
        np.testing.assert_array_equal(decoded, array)

    def test_float64_values_survive_exactly(self):
        array = np.array([0.1, 1.0 / 3.0, 1e-300, math.pi])
        decoded = round_trip(array)
        assert decoded.tolist() == array.tolist()  # exact, not approx

    def test_nan_and_infinity(self):
        decoded = round_trip([math.nan, math.inf, -math.inf])
        assert math.isnan(decoded[0])
        assert decoded[1] == math.inf
        assert decoded[2] == -math.inf

    def test_waveform(self):
        wave = Waveform([0.0, 1e-12, 2e-12], [0.0, 0.4, 0.1])
        decoded = round_trip(wave)
        assert isinstance(decoded, Waveform)
        np.testing.assert_array_equal(decoded.times, wave.times)
        np.testing.assert_array_equal(decoded.values, wave.values)

    def test_non_string_keys_use_the_mapping_tag(self):
        mapping = {(0.5, 1.5): "grid point", 3: "three"}
        encoded = wire.encode(mapping)
        assert encoded["__wire__"] == "mapping"
        decoded = round_trip(mapping)
        assert decoded == mapping
        assert (0.5, 1.5) in decoded

    def test_a_key_colliding_with_the_tag_is_escaped(self):
        tricky = {"__wire__": "not a tag", "other": 1}
        decoded = round_trip(tricky)
        assert decoded == tricky

    def test_dataclass_round_trip_reruns_validation(self):
        config = AnalysisConfig(methods=("macromodel",), vccs_grid=5, dt=2e-12)
        decoded = round_trip(config)
        assert isinstance(decoded, AnalysisConfig)
        assert decoded == config

    def test_unencodable_type_raises(self):
        with pytest.raises(wire.WireFormatError, match="cannot encode"):
            wire.encode({1, 2, 3})
        with pytest.raises(wire.WireFormatError, match="cannot encode"):
            wire.encode(object())

    def test_untrusted_class_is_never_imported(self):
        payload = {
            "__wire__": "dataclass",
            "class": "os:environ",
            "fields": {},
        }
        with pytest.raises(wire.WireFormatError, match="refusing to import"):
            wire.decode(payload)

    def test_unknown_field_rejected(self):
        encoded = wire.encode(AnalysisConfig(vccs_grid=5))
        encoded["fields"]["not_a_field"] = 1
        with pytest.raises(wire.WireFormatError, match="unknown field"):
            wire.decode(encoded)

    def test_invalid_field_value_rejected_by_constructor(self):
        encoded = wire.encode(AnalysisConfig(vccs_grid=5))
        encoded["fields"]["vccs_grid"] = 1  # __post_init__ requires >= 3
        with pytest.raises(wire.WireFormatError, match="cannot reconstruct"):
            wire.decode(encoded)

    def test_unknown_tag_rejected(self):
        with pytest.raises(wire.WireFormatError, match="unknown wire tag"):
            wire.decode({"__wire__": "hologram"})


class TestEnvelope:
    def test_wrap_carries_version_and_kind(self):
        envelope = wire.wrap("cluster_report", (1, 2))
        assert envelope["schema_version"] == wire.SCHEMA_VERSION
        assert envelope["kind"] == "cluster_report"
        assert wire.unwrap(envelope, "cluster_report") == (1, 2)

    def test_schema_version_mismatch_rejected(self):
        envelope = wire.wrap("cluster_report", 1)
        envelope["schema_version"] = 99
        with pytest.raises(wire.WireFormatError, match="schema_version"):
            wire.unwrap(envelope, "cluster_report")

    def test_kind_mismatch_rejected(self):
        envelope = wire.wrap("cluster_report", 1)
        with pytest.raises(wire.WireFormatError, match="session_report"):
            wire.unwrap(envelope, "session_report")

    def test_non_dict_rejected(self):
        with pytest.raises(wire.WireFormatError, match="envelope"):
            wire.unwrap([1, 2], "cluster_report")


# ---------------------------------------------------------------------------
# Report round trips on real analysis results


def canonical(payload):
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module", params=["dense", "sparse"])
def analyzed(request):
    """One real ClusterReport per solver backend."""
    library = build_default_library("cmos130")
    config = AnalysisConfig(
        methods=("macromodel",),
        vccs_grid=5,
        check_nrc=True,
        dt=4e-12,
        solver_backend=request.param,
    )
    session = NoiseAnalysisSession(library, config)
    spec = figure1_cluster(length_um=200.0, num_segments=3)
    return session.analyze(spec, label=f"fig1-{request.param}")


class TestClusterReportRoundTrip:
    def test_bit_identical_under_both_backends(self, analyzed):
        payload = analyzed.to_json()
        # The payload must be genuinely JSON-serialisable.
        text = json.dumps(payload)
        decoded = ClusterReport.from_json(json.loads(text))
        assert isinstance(decoded, ClusterReport)
        assert canonical(decoded.to_json()) == canonical(payload)

    def test_decoded_report_is_usable(self, analyzed):
        decoded = ClusterReport.from_json(analyzed.to_json())
        assert decoded.label == analyzed.label
        assert decoded.primary.peak == analyzed.primary.peak
        assert decoded.primary.victim_waveform.values.tolist() == (
            analyzed.primary.victim_waveform.values.tolist()
        )
        assert decoded.nrc_checks.keys() == analyzed.nrc_checks.keys()
        assert decoded.fails == analyzed.fails

    def test_error_collected_report_round_trips(self):
        spec = figure1_cluster(length_um=200.0, num_segments=3)
        report = ClusterReport(
            label="broken",
            spec=spec,
            results={},
            error=ClusterError(
                exception_type="SingularMatrixError",
                message="matrix is singular",
                traceback_text="Traceback ...",
                method="macromodel",
                cause_chain=("RuntimeError: builder failed", "SingularMatrixError: x"),
            ),
            degradation=("rejected dense attempt", "fell back to sparse"),
        )
        decoded = ClusterReport.from_json(report.to_json())
        assert decoded.error == report.error
        assert decoded.degradation == report.degradation
        assert not decoded.ok
        assert canonical(decoded.to_json()) == canonical(report.to_json())

    def test_wrong_kind_payload_rejected(self, analyzed):
        envelope = analyzed.to_json()
        with pytest.raises(wire.WireFormatError):
            SessionReport.from_json(envelope)


class TestSessionReportRoundTrip:
    def test_lossless(self, analyzed):
        report = SessionReport(
            clusters=[analyzed],
            methods=("macromodel",),
            total_runtime_seconds=1.25,
            design_name="wiretest",
        )
        payload = report.to_json()
        decoded = SessionReport.from_json(json.loads(json.dumps(payload)))
        assert canonical(decoded.to_json()) == canonical(payload)
        assert decoded.design_name == "wiretest"
        assert decoded.methods == ("macromodel",)
        assert len(decoded) == 1
        assert decoded.cluster(analyzed.label).primary.peak == analyzed.primary.peak
        # The behavioural surface survives serialisation.
        assert decoded.text() == report.text()


class TestSweepReportRoundTrip:
    def build_report(self):
        results = [
            ScenarioResult(
                scenario_id="fig1/cmos130/tt/nom",
                axes=(("corner", "tt"), ("geometry", "nom")),
                peaks={"macromodel": 0.31, "golden": 0.3},
                areas_v_ps={"macromodel": 41.0, "golden": 40.0},
                widths_ps={"macromodel": 120.0, "golden": 118.0},
                nrc_fails={"macromodel": False},
                runtime_seconds=0.4,
                session_key="('cmos130', 'tt')",
            ),
            ScenarioResult(
                scenario_id="fig1/cmos130/ff/nom",
                axes=(("corner", "ff"), ("geometry", "nom")),
                ok=False,
                error="InjectedFault: boom",
                traceback_text="Traceback ...",
                error_chain=("InjectedFault: boom",),
                attempts=3,
                quarantined=True,
            ),
            ScenarioResult(
                scenario_id="fig1/cmos130/ss/nom",
                axes=(("corner", "ss"), ("geometry", "nom")),
                peaks={"macromodel": -0.28},
                areas_v_ps={"macromodel": 35.0},
                widths_ps={"macromodel": 110.0},
                nrc_fails={"macromodel": True},
                degradation=("retried on sparse rung",),
            ),
        ]
        health = SweepHealth(
            retries=2,
            shard_splits=1,
            pool_rebuilds=1,
            worker_crashes=1,
            quarantined=["fig1/cmos130/ff/nom"],
            degraded_scenarios=["fig1/cmos130/ss/nom"],
            fallback_triggers={"numerical: singular": 1},
            max_tasks_per_child=8,
            batch_groups=2,
            batched_solves=5,
            factorizations_saved=3,
            events=["worker pool broke; rebuilding"],
        )
        return SweepReport(
            results,
            methods=("macromodel", "golden"),
            elapsed_seconds=2.5,
            num_workers=2,
            num_shards=4,
            cache_stats={"disk_hits": 3, "disk_misses": 1, "characterizations": 1},
            health=health,
        )

    def test_lossless_including_health(self):
        report = self.build_report()
        payload = report.to_json()
        decoded = SweepReport.from_json(json.loads(json.dumps(payload)))
        assert canonical(decoded.to_json()) == canonical(payload)
        assert len(decoded) == 3
        assert decoded.result("fig1/cmos130/ff/nom").quarantined
        assert decoded.result("fig1/cmos130/ff/nom").error_chain == (
            "InjectedFault: boom",
        )
        assert decoded.result("fig1/cmos130/ss/nom").degradation == (
            "retried on sparse rung",
        )
        assert decoded.health.worker_crashes == 1
        assert decoded.health.fallback_triggers == {"numerical: singular": 1}
        assert decoded.health.max_tasks_per_child == 8
        assert decoded.health.events == ["worker pool broke; rebuilding"]
        assert decoded.cache_stats == report.cache_stats
        assert decoded.worst_case().scenario_id == report.worst_case().scenario_id

    def test_legacy_summary_keys_survive(self):
        """Dashboards and CI gates keep reading the pre-wire summary keys."""
        payload = self.build_report().to_json()
        assert payload["num_scenarios"] == 3
        assert payload["num_errors"] == 1
        assert payload["nrc_failures"] == 1
        assert payload["worst_case"]["scenario_id"] == "fig1/cmos130/tt/nom"
        assert "tt" in payload["by_corner"]
        assert payload["health"]["worker_crashes"] == 1
        assert payload["scenarios_per_second"] > 0

    def test_envelope_validation(self):
        payload = self.build_report().to_json()
        bad_version = dict(payload, schema_version=99)
        with pytest.raises(wire.WireFormatError, match="schema_version"):
            SweepReport.from_json(bad_version)
        bad_kind = dict(payload, kind="cluster_report")
        with pytest.raises(wire.WireFormatError, match="sweep_report"):
            SweepReport.from_json(bad_kind)
