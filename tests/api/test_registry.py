"""Tests for the pluggable analysis-method registry."""

import pytest

from repro.api import (
    AnalysisConfig,
    DuplicateMethodError,
    MethodContext,
    UnknownMethodError,
    create_method,
    list_methods,
    method_descriptions,
    register_method,
    unregister_method,
)
from repro.characterization import LibraryCharacterizer
from repro.technology import build_default_library


@pytest.fixture(scope="module")
def library():
    return build_default_library("cmos130")


@pytest.fixture()
def context(library):
    return MethodContext(
        library=library,
        characterizer=LibraryCharacterizer(library, vccs_grid=13),
        config=AnalysisConfig(vccs_grid=13),
    )


class _StubMethod:
    method_name = "stub"

    def analyze(self, spec, *, dt=None, t_stop=None, builder=None):
        raise NotImplementedError


class TestBuiltins:
    def test_all_four_paper_methods_registered(self):
        names = list_methods()
        assert {"golden", "macromodel", "superposition", "iterative_thevenin"} <= set(names)

    def test_descriptions_are_non_empty(self):
        descriptions = method_descriptions()
        for name in ("golden", "macromodel", "superposition", "iterative_thevenin"):
            assert descriptions[name]

    def test_create_builds_the_right_backends(self, context):
        from repro.golden import GoldenClusterAnalysis
        from repro.noise import MacromodelAnalysis

        assert isinstance(create_method("golden", context), GoldenClusterAnalysis)
        macromodel = create_method("macromodel", context)
        assert isinstance(macromodel, MacromodelAnalysis)
        # The backend is built from the context: shared characterizer + config.
        assert macromodel.characterizer is context.characterizer
        assert macromodel.reduction == context.config.reduction
        assert macromodel.vccs_grid == context.config.vccs_grid


class TestRegistration:
    def test_register_and_unregister(self, context):
        @register_method("test_stub", description="a stub")
        def _factory(ctx):
            return _StubMethod()

        try:
            assert "test_stub" in list_methods()
            assert method_descriptions()["test_stub"] == "a stub"
            assert isinstance(create_method("test_stub", context), _StubMethod)
        finally:
            unregister_method("test_stub")
        assert "test_stub" not in list_methods()

    def test_duplicate_name_rejected(self):
        @register_method("test_dup")
        def _factory(ctx):
            return _StubMethod()

        try:
            with pytest.raises(DuplicateMethodError, match="test_dup.*already registered"):
                register_method("test_dup")(lambda ctx: _StubMethod())
            # Explicit replace is allowed.
            replacement = lambda ctx: _StubMethod()  # noqa: E731
            assert register_method("test_dup", replace=True)(replacement) is replacement
        finally:
            unregister_method("test_dup")

    def test_description_falls_back_to_factory_docstring(self):
        @register_method("test_doc")
        def _factory(ctx):
            """First docstring line becomes the description.

            Not this one.
            """
            return _StubMethod()

        try:
            assert (
                method_descriptions()["test_doc"]
                == "First docstring line becomes the description."
            )
        finally:
            unregister_method("test_doc")

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            register_method("")
        with pytest.raises(ValueError):
            register_method(None)

    def test_builtin_name_protected_even_before_first_query(self):
        """Registering triggers the builtin load, so a user registration can
        never silently take a builtin name in a fresh process."""
        import os
        import subprocess
        import sys

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "from repro.api.registry import DuplicateMethodError, register_method\n"
            "try:\n"
            "    register_method('macromodel')(lambda ctx: None)\n"
            "except DuplicateMethodError:\n"
            "    print('rejected')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "rejected"


class TestUnknownMethod:
    def test_create_unknown_method(self, context):
        with pytest.raises(UnknownMethodError) as excinfo:
            create_method("spice", context)
        message = str(excinfo.value)
        assert "spice" in message
        # The error names the registered alternatives.
        assert "macromodel" in message and "golden" in message

    def test_unknown_method_is_a_value_error(self, context):
        with pytest.raises(ValueError):
            create_method("nosuch", context)

    def test_unregister_unknown(self):
        with pytest.raises(UnknownMethodError):
            unregister_method("never_registered")
