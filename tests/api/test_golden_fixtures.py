"""Golden end-to-end fixture corpus: pinned cluster-report scalars.

Three small-cluster analyses (the cmos130 quick accuracy-sweep set) are run
end to end -- characterisation, model building, golden transistor-level
simulation and the macromodel engine -- and their scalar summaries (peak,
area, width per method) are compared against checked-in JSON fixtures.  Any
numeric drift beyond tolerance fails, whatever layer it crept in from; the
run is parametrized over both solver backends, so the corpus doubles as an
end-to-end backend-independence gate.

Regenerating after an *intended* numeric change::

    REPRO_REGEN_FIXTURES=1 PYTHONPATH=src python -m pytest tests/api/test_golden_fixtures.py
"""

import json
import os

import pytest

from repro.api import AnalysisConfig, NoiseAnalysisSession
from repro.experiments import accuracy_sweep_clusters
from repro.technology import build_default_library

FIXTURE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "fixtures", "golden_clusters.json"
)

#: Methods pinned by the corpus (the accuracy reference and the paper's model).
METHODS = ("golden", "macromodel")

#: Relative drift allowed before the corpus fails.  Far above cross-platform
#: BLAS jitter (~1e-12 on these metrics), far below any physical change.
RTOL = 1e-6

#: Scalar fields pinned per method result.
SCALARS = ("peak", "area_v_ps", "width_ps")


def _analyze(solver_backend):
    cases = accuracy_sweep_clusters(technologies=("cmos130",), quick=True)
    config = AnalysisConfig(
        methods=METHODS, vccs_grid=13, check_nrc=False, solver_backend=solver_backend
    )
    session = NoiseAnalysisSession(build_default_library("cmos130"), config)
    reports = session.analyze_many(
        [case.spec for case in cases],
        labels=[case.label for case in cases],
        on_error="raise",
    )
    summary = {}
    for report in reports:
        summary[report.label] = {
            method: {scalar: getattr(result, scalar) for scalar in SCALARS}
            for method, result in report.results.items()
        }
    return summary


def test_fixture_corpus_matches_or_regenerates():
    """The dense-backend run must match the pinned corpus exactly-ish."""
    summary = _analyze("dense")
    if os.environ.get("REPRO_REGEN_FIXTURES"):
        os.makedirs(os.path.dirname(FIXTURE_PATH), exist_ok=True)
        with open(FIXTURE_PATH, "w") as handle:
            json.dump(
                {"methods": list(METHODS), "clusters": summary}, handle, indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        pytest.skip(f"regenerated {FIXTURE_PATH}")

    with open(FIXTURE_PATH) as handle:
        pinned = json.load(handle)
    assert sorted(pinned["clusters"]) == sorted(summary), (
        "cluster corpus changed; regenerate with REPRO_REGEN_FIXTURES=1 if intended"
    )
    for label, methods in pinned["clusters"].items():
        for method, scalars in methods.items():
            for scalar, expected in scalars.items():
                actual = summary[label][method][scalar]
                assert actual == pytest.approx(expected, rel=RTOL), (
                    f"{label} / {method} / {scalar} drifted: "
                    f"pinned {expected!r}, got {actual!r} "
                    "(regenerate with REPRO_REGEN_FIXTURES=1 if intended)"
                )


def test_sparse_backend_reproduces_the_corpus():
    """Forcing the sparse backend end to end reproduces the pinned numbers.

    This is the fixture-level backend-independence gate: every circuit solve
    behind these reports (DC, golden transient, engine) runs on scipy.sparse
    splu instead of dense LAPACK, and the pinned scalars must not move.
    """
    with open(FIXTURE_PATH) as handle:
        pinned = json.load(handle)
    summary = _analyze("sparse")
    for label, methods in pinned["clusters"].items():
        for method, scalars in methods.items():
            for scalar, expected in scalars.items():
                assert summary[label][method][scalar] == pytest.approx(
                    expected, rel=RTOL
                ), f"sparse backend drifted on {label} / {method} / {scalar}"
