"""The declared public surface is complete, importable and leak-free."""

import importlib

import repro


class TestPublicSurface:
    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_no_private_names_leak(self):
        for name in repro.__all__:
            assert name == "__version__" or not name.startswith("_"), name

    def test_all_covers_the_lazy_export_tables(self):
        assert set(repro._API_EXPORTS) <= set(repro.__all__)
        assert set(repro._SERVICE_EXPORTS) <= set(repro.__all__)

    def test_service_entry_points_are_exported(self):
        assert "ServiceClient" in repro.__all__
        assert "AnalysisServer" in repro.__all__
        from repro.service import AnalysisServer, ServiceClient

        assert repro.ServiceClient is ServiceClient
        assert repro.AnalysisServer is AnalysisServer

    def test_lazy_names_resolve_to_their_home_modules(self):
        api = importlib.import_module("repro.api")
        for name in repro._API_EXPORTS:
            assert getattr(repro, name) is getattr(api, name), name

    def test_dir_lists_the_full_surface(self):
        listed = dir(repro)
        for name in repro.__all__:
            assert name in listed, name

    def test_unknown_attribute_raises(self):
        try:
            repro.not_a_real_export
        except AttributeError as exc:
            assert "not_a_real_export" in str(exc)
        else:
            raise AssertionError("expected AttributeError")

    def test_version_is_current(self):
        assert repro.__version__ == "0.3.0"
