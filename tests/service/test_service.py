"""The analysis daemon: lifecycle, fingerprint dedup, ECO diffs, crashes.

Most tests run the server with ``num_workers=0`` (a single in-process
thread), which keeps them fast and lets them prove the strongest dedup
property directly: a fingerprint hit never reaches the compute path at all.
The crash test boots a real 2-process spawn pool and kills a worker with the
fault-injection machinery from :mod:`repro.faults`.
"""

import json
import os

import pytest

from repro import faults
from repro.api import AnalysisConfig
from repro.sna import ExtractionConfig, SyntheticChip
from repro.experiments import figure1_cluster
from repro.service import (
    AnalysisServer,
    ServiceClient,
    ServiceError,
    cluster_fingerprint,
    start_server_in_thread,
    technology_library_fingerprint,
)

CONFIG = AnalysisConfig(methods=("macromodel",), vccs_grid=5, check_nrc=False, dt=4e-12)


def cluster(length_um=200.0):
    return figure1_cluster(length_um=length_um, num_segments=3)


def stripped(report):
    """A cluster report's wire payload with the merge-time provenance cleared."""
    payload = report.to_json()
    payload["payload"]["fields"]["provenance"] = ""
    return json.dumps(payload, sort_keys=True)


@pytest.fixture()
def service():
    handle = start_server_in_thread(config=CONFIG, num_workers=0)
    client = ServiceClient(handle.address)
    try:
        yield handle.server, client
    finally:
        client.close()
        handle.stop()


# ---------------------------------------------------------------------------
# Fingerprints


class TestFingerprint:
    def test_deterministic(self):
        lib_fp = technology_library_fingerprint("cmos130")
        a = cluster_fingerprint(cluster(), CONFIG, library_fingerprint=lib_fp)
        b = cluster_fingerprint(cluster(), CONFIG, library_fingerprint=lib_fp)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_spec_config_and_library_all_matter(self):
        lib_fp = technology_library_fingerprint("cmos130")
        base = cluster_fingerprint(cluster(), CONFIG, library_fingerprint=lib_fp)
        assert (
            cluster_fingerprint(cluster(300.0), CONFIG, library_fingerprint=lib_fp)
            != base
        )
        assert (
            cluster_fingerprint(
                cluster(), CONFIG.replace(vccs_grid=7), library_fingerprint=lib_fp
            )
            != base
        )
        other_lib = technology_library_fingerprint("cmos90")
        assert other_lib != lib_fp
        assert (
            cluster_fingerprint(cluster(), CONFIG, library_fingerprint=other_lib)
            != base
        )

    def test_execution_only_fields_are_ignored(self):
        """Where a job runs must not change what it is."""
        lib_fp = technology_library_fingerprint("cmos130")
        base = cluster_fingerprint(cluster(), CONFIG, library_fingerprint=lib_fp)
        moved = CONFIG.replace(max_workers=8, cache_dir="/tmp/elsewhere")
        assert cluster_fingerprint(cluster(), moved, library_fingerprint=lib_fp) == base


# ---------------------------------------------------------------------------
# Lifecycle


class TestLifecycle:
    def test_hello_ping_status_submit_shutdown(self, service):
        server, client = service
        assert client.hello["server_version"]
        client.ping()

        status = client.status()
        assert status["num_workers"] == 0
        assert status["jobs"] == {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "active": 0,
            "lost": 0,
        }
        assert status["queue_depth"] == 0
        assert status["in_flight"] == 0
        assert status["uptime_seconds"] >= 0.0
        assert "worker_crashes" in status["health"]

        events = []
        result = client.submit_design(
            [("c200", cluster(200.0)), ("c300", cluster(300.0))],
            design_name="lifecycle",
            on_progress=events.append,
        )
        assert sorted(result.recomputed) == ["c200", "c300"]
        assert result.reused == [] and result.failed == []
        assert len(result.report) == 2
        assert result.report.design_name == "lifecycle"
        assert all(r.provenance == "recomputed" for r in result.report)
        assert result.report.cluster("c200").primary.peak != 0.0

        assert len(events) == 2
        assert {e["label"] for e in events} == {"c200", "c300"}
        assert all(e["total"] == 2 for e in events)
        assert [e["completed"] for e in sorted(events, key=lambda e: e["completed"])] == [1, 2]

        status = client.status()
        assert status["jobs"]["submitted"] == 1
        assert status["jobs"]["completed"] == 1
        assert status["jobs"]["lost"] == 0

        # A client-requested shutdown is acknowledged before the server exits
        # its run loop; the fixture's handle.stop() then joins the thread.
        client.shutdown()

    def test_bad_jobs_fail_loudly_and_server_survives(self, service):
        _, client = service
        with pytest.raises(ServiceError, match="non-empty list"):
            client.submit_design([])
        with pytest.raises(ServiceError, match="duplicate cluster label"):
            client.submit_design([("same", cluster()), ("same", cluster(300.0))])
        client.ping()  # the connection and the daemon both survive
        status = client.status()
        assert status["jobs"]["failed"] == 2
        assert status["jobs"]["lost"] == 0

    def test_unix_socket_endpoint(self, tmp_path):
        handle = start_server_in_thread(
            config=CONFIG, num_workers=0, unix_path=str(tmp_path / "svc.sock")
        )
        try:
            assert handle.address == str(tmp_path / "svc.sock")
            with ServiceClient(handle.address) as client:
                client.ping()
                result = client.submit_design({"c200": cluster(200.0)})
                assert result.recomputed == ["c200"]
        finally:
            handle.stop()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="num_workers"):
            AnalysisServer(num_workers=-1)
        with pytest.raises(ValueError, match="max_retries"):
            AnalysisServer(max_retries=-1)
        with pytest.raises(ValueError, match="not both"):
            start_server_in_thread(AnalysisServer(), num_workers=2)


# ---------------------------------------------------------------------------
# Fingerprint dedup


class TestDedup:
    def test_identical_resubmit_never_reaches_the_compute_path(self, service):
        server, client = service
        clusters = [("c200", cluster(200.0)), ("c300", cluster(300.0))]
        first = client.submit_design(clusters)
        assert sorted(first.recomputed) == ["c200", "c300"]

        async def poisoned_compute(*args, **kwargs):
            raise AssertionError("dedup hit must not reach the compute path")

        server._compute = poisoned_compute
        second = client.submit_design(clusters)
        assert sorted(second.reused) == ["c200", "c300"]
        assert second.recomputed == []

        status = client.status()
        assert status["dedup"]["hits"] == 2
        assert status["dedup"]["entries"] == 2
        assert status["dedup"]["hit_rate"] == pytest.approx(0.5)

    def test_reused_reports_are_byte_identical(self, service):
        _, client = service
        clusters = {"c200": cluster(200.0)}
        first = client.submit_design(clusters)
        second = client.submit_design(clusters)
        assert first.report.cluster("c200").provenance == "recomputed"
        assert second.report.cluster("c200").provenance == "reused"
        assert stripped(second.report.cluster("c200")) == stripped(
            first.report.cluster("c200")
        )


# ---------------------------------------------------------------------------
# Incremental ECO re-analysis


class TestECO:
    def test_revision_with_one_change_recomputes_exactly_one_cluster(self, service):
        _, client = service
        revision1 = [
            ("c200", cluster(200.0)),
            ("c300", cluster(300.0)),
            ("c400", cluster(400.0)),
        ]
        first = client.submit_design(revision1, design_name="eco-rev1")
        assert sorted(first.recomputed) == ["c200", "c300", "c400"]

        # ECO: only c300 changes (the bus grows to 350 um).
        revision2 = [
            ("c200", cluster(200.0)),
            ("c300", cluster(350.0)),
            ("c400", cluster(400.0)),
        ]
        second = client.submit_design(revision2, design_name="eco-rev2")
        assert second.recomputed == ["c300"]
        assert sorted(second.reused) == ["c200", "c400"]
        assert second.counters["reused"] == 2
        assert second.counters["recomputed"] == 1

        # Reused clusters are byte-identical to revision 1; the changed one
        # genuinely re-ran against its new spec.
        for label in ("c200", "c400"):
            assert stripped(second.report.cluster(label)) == stripped(
                first.report.cluster(label)
            )
        assert stripped(second.report.cluster("c300")) != stripped(
            first.report.cluster("c300")
        )
        merged = second.report
        assert {r.label: r.provenance for r in merged} == {
            "c200": "reused",
            "c300": "recomputed",
            "c400": "reused",
        }

    def test_progress_events_carry_provenance(self, service):
        _, client = service
        client.submit_design({"c200": cluster(200.0)})
        events = []
        client.submit_design(
            [("c200", cluster(200.0)), ("c500", cluster(500.0))],
            on_progress=events.append,
        )
        provenance = {e["label"]: e["provenance"] for e in events}
        assert provenance == {"c200": "reused", "c500": "recomputed"}


# ---------------------------------------------------------------------------
# Worker crashes


class TestWorkerCrash:
    def test_crash_is_retried_and_surfaced_without_losing_jobs(self, tmp_path):
        """A worker killed mid-job (real spawn pool) must not lose the job.

        The fault plan crashes the worker analysing ``crashy`` exactly once
        (cross-process trip ledger); the rebuilt pool's retry must complete
        it, the innocent sibling must complete too, and the crash must be
        visible in the status health ledger.
        """
        plan = {
            "ledger_dir": str(tmp_path / "ledger"),
            "faults": [
                {"site": "scenario", "kind": "crash", "match": "crashy", "max_trips": 1}
            ],
        }
        os.environ[faults.FAULT_PLAN_ENV] = json.dumps(plan)
        try:
            handle = start_server_in_thread(
                config=CONFIG, num_workers=2, max_retries=2
            )
            try:
                with ServiceClient(handle.address) as client:
                    result = client.submit_design(
                        [("crashy", cluster(200.0)), ("innocent", cluster(300.0))]
                    )
                    assert result.failed == []
                    assert sorted(result.recomputed) == ["crashy", "innocent"]
                    assert result.report.cluster("crashy").ok
                    assert result.report.cluster("innocent").ok

                    status = client.status()
                    assert status["jobs"]["lost"] == 0
                    assert status["jobs"]["completed"] == 1
                    assert status["health"]["worker_crashes"] >= 1
                    assert status["health"]["pool_rebuilds"] >= 1
                    assert status["health"]["quarantined"] == []
            finally:
                handle.stop()
        finally:
            del os.environ[faults.FAULT_PLAN_ENV]
            faults.clear_plan()

    def test_unrecoverable_crash_is_quarantined_as_an_error_report(self, tmp_path):
        """A cluster that kills its worker on every attempt ends up as a
        structured error report, not a hang or a lost job."""
        plan = {
            "ledger_dir": str(tmp_path / "ledger"),
            "faults": [{"site": "scenario", "kind": "crash", "match": "doomed"}],
        }
        os.environ[faults.FAULT_PLAN_ENV] = json.dumps(plan)
        try:
            handle = start_server_in_thread(
                config=CONFIG, num_workers=2, max_retries=1
            )
            try:
                with ServiceClient(handle.address) as client:
                    result = client.submit_design({"doomed": cluster(200.0)})
                    assert result.failed == ["doomed"]
                    report = result.report.cluster("doomed")
                    assert not report.ok
                    assert report.error.exception_type == "WorkerCrash"

                    status = client.status()
                    assert status["jobs"]["lost"] == 0
                    assert "doomed" in status["health"]["quarantined"]

                    # The quarantined error payload is not stored: a resubmit
                    # gets a fresh chance instead of a cached failure.
                    assert status["dedup"]["entries"] == 0
            finally:
                handle.stop()
        finally:
            del os.environ[faults.FAULT_PLAN_ENV]
            faults.clear_plan()


# ---------------------------------------------------------------------------
# Streaming full-chip ingest


class TestStreamingSubmit:
    def extractions(self, chip):
        from repro.sna import StreamingClusterExtractor
        from repro.technology import get_technology

        technology = get_technology("cmos130")
        extractor = StreamingClusterExtractor(
            chip, technology, config=ExtractionConfig(num_segments=3, max_aggressors=2)
        )
        return extractor.extract(chip.spef_lines(technology, style="dnet"))

    def test_streamed_design_is_submitted_in_chunks(self, service):
        server, client = service
        chip = SyntheticChip(num_nets=8, bus_width=4, topology="bus", seed=9)
        result = client.submit_design_stream(
            self.extractions(chip), chunk_size=3, design_name="fullchip"
        )
        labels = sorted(f"cluster_n{i}" for i in range(8))
        assert sorted(result.recomputed) == labels
        assert result.reused == [] and result.failed == []
        assert sorted(r.label for r in result.report.clusters) == labels
        assert result.counters["recomputed"] == 8
        # 8 clusters in chunks of 3 -> 3 submit_design revisions.
        assert client.status()["jobs"]["submitted"] == 3
        assert result.report.total_runtime_seconds > 0.0

    def test_second_stream_is_fully_deduplicated(self, service):
        _, client = service
        chip = SyntheticChip(num_nets=8, bus_width=4, topology="bus", seed=9)
        client.submit_design_stream(self.extractions(chip), chunk_size=3)
        again = client.submit_design_stream(self.extractions(chip), chunk_size=5)
        assert again.recomputed == []
        assert sorted(again.reused) == sorted(f"cluster_n{i}" for i in range(8))

    def test_empty_stream(self, service):
        _, client = service
        result = client.submit_design_stream(iter([]))
        assert result.job_id == -1
        assert result.report.clusters == []
