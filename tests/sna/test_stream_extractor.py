"""Streaming cluster extraction: differentials, budget policy, windowing."""

import random

import pytest

from repro.api import AnalysisConfig, NoiseAnalysisSession
from repro.sna import (
    ClusterExtractor,
    Design,
    ExtractionConfig,
    SPEFError,
    StreamingClusterExtractor,
    SyntheticChip,
    annotate_design,
    parse_spef,
    write_coupling_file,
)
from repro.sna.stream import DesignRoles, StreamWindowExceeded
from repro.technology import build_default_library


@pytest.fixture(scope="module")
def library():
    return build_default_library("cmos130")


@pytest.fixture(scope="module")
def technology(library):
    return library.technology


def assert_identical(streamed, in_memory):
    """Same victims, bit-identical specs, same skipped-aggressor provenance."""
    streamed = {item.victim_net: item for item in streamed}
    in_memory = {item.victim_net: item for item in in_memory}
    assert set(streamed) == set(in_memory)
    for net, expected in in_memory.items():
        got = streamed[net]
        assert got.spec == expected.spec, f"spec differs for victim '{net}'"
        assert got.aggressor_nets == expected.aggressor_nets
        assert got.skipped_aggressors == expected.skipped_aggressors


def random_design(library, seed, num_nets=30):
    """A seeded random design whose compact SPEF round-trips exactly.

    Integer lengths survive ``write_coupling_file``'s ``%g`` formatting, so
    the streamed geometry is bit-identical to the design's.
    """
    rng = random.Random(seed)
    design = Design(f"rand_{seed}", library)
    design.add_primary_input("pi")
    nets = [f"m{i}" for i in range(num_nets)]
    driverless = set(rng.sample(range(num_nets), max(1, num_nets // 10)))
    cells = ["INV_X1", "INV_X2", "INV_X4", "NAND2_X1", "NOR2_X2"]
    for i, net in enumerate(nets):
        design.add_net(
            net,
            length_um=float(rng.randrange(80, 400)),
            layer_index=rng.choice([2, 3, 4, 5]),
            quiet_high=rng.choice([None, False, True]),
        )
    for i, net in enumerate(nets):
        if i not in driverless:
            cell = rng.choice(cells)
            connections = {"A": "pi", "Z": net}
            if library.cell(cell).inputs == ["A", "B"]:
                connections["B"] = "pi"
            design.add_instance(f"u{i}", cell, connections)
        if rng.random() < 0.9:
            design.add_instance(f"r{i}", "INV_X1", {"A": net, "Z": f"o{i}"})
    pairs = set()
    for _ in range(2 * num_nets):
        a, b = rng.sample(range(num_nets), 2)
        key = frozenset((a, b))
        if key not in pairs:
            pairs.add(key)
            design.add_coupling(nets[a], nets[b], float(rng.randrange(20, 200)))
    # No victim may end up with *only* driverless partners: the in-memory
    # extractor (rightly) raises for those, which is not what this
    # differential is probing.
    partners = {i: set() for i in range(num_nets)}
    for key in pairs:
        a, b = tuple(key)
        partners[a].add(b)
        partners[b].add(a)
    driven = sorted(set(range(num_nets)) - driverless)
    for i in range(num_nets):
        if partners[i] and partners[i] <= driverless:
            rescue = next(d for d in driven if d != i and d not in partners[i])
            design.add_coupling(nets[i], nets[rescue], float(rng.randrange(20, 200)))
    return design


class TestDifferential:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_random_design_compact_round_trip(self, library, technology, seed):
        design = random_design(library, seed)
        text = write_coupling_file(design)
        config = ExtractionConfig(num_segments=4, max_aggressors=3)
        in_memory = ClusterExtractor(design, config=config).extract_clusters()
        streaming = StreamingClusterExtractor.for_design(design, config=config)
        assert_identical(streaming.extract(text), in_memory)

    @pytest.mark.parametrize("style,use_name_map", [
        ("dnet", False),
        ("dnet", True),
        ("compact", False),
    ])
    def test_synthetic_chip(self, library, technology, style, use_name_map):
        chip = SyntheticChip(
            num_nets=96, bus_width=6, topology="grid", seed=11, driverless_every=17
        )
        # Annotating from the same text feeds both extractors the same
        # parsed capacitances, so dnet cap->length conversion round-trips.
        design = chip.build_design(library, connectivity_only=(style == "dnet"))
        if style == "dnet":
            text = "\n".join(
                chip.spef_lines(technology, style=style, use_name_map=use_name_map)
            )
            annotate_design(design, text)
            lines = chip.spef_lines(technology, style=style, use_name_map=use_name_map)
        else:
            lines = chip.spef_lines(technology, style=style)
        in_memory = ClusterExtractor(design).extract_clusters()
        streaming = StreamingClusterExtractor(chip, technology)
        assert_identical(streaming.extract(lines), in_memory)
        assert streaming.stats.clusters == len(in_memory)
        assert streaming.stats.nets_seen == chip.num_nets
        assert streaming.stats.couplings_seen == chip.num_couplings()

    def test_bus_topology_and_event_stream_input(self, library, technology):
        chip = SyntheticChip(num_nets=40, bus_width=8, topology="bus", seed=3)
        design = chip.build_design(library)
        in_memory = ClusterExtractor(design).extract_clusters()
        events = list(parse_spef("\n".join(chip.spef_lines(technology, style="compact"))))
        streaming = StreamingClusterExtractor(chip, technology)
        assert_identical(streaming.extract(events), in_memory)


class TestAggressorBudget:
    """The satellite bugfix: driverless couplings must not consume slots."""

    def build(self, library):
        design = Design("budget", library)
        design.add_primary_input("pi")
        for net, length in [("v", 300.0), ("d0", 300.0), ("a1", 300.0), ("a2", 300.0)]:
            design.add_net(net, length_um=length, layer_index=4)
        for i, net in enumerate(["v", "a1", "a2"]):
            design.add_instance(f"u{i}", "INV_X1", {"A": "pi", "Z": net})
        design.add_instance("r0", "INV_X1", {"A": "v", "Z": "out"})
        # Strongest coupling is the driverless net d0.
        design.add_coupling("v", "d0", 500.0)
        design.add_coupling("v", "a1", 300.0)
        design.add_coupling("v", "a2", 200.0)
        return design

    def test_in_memory_budget_not_consumed_by_driverless(self, library):
        design = self.build(library)
        config = ExtractionConfig(max_aggressors=2, num_segments=4)
        extraction = ClusterExtractor(design, config=config).extract_cluster("v")
        # Before the fix d0 burnt a slot and a2 was dropped.
        assert extraction.aggressor_nets == ["a1", "a2"]
        assert extraction.skipped_aggressors == ["d0"]

    def test_streaming_matches(self, library):
        design = self.build(library)
        config = ExtractionConfig(max_aggressors=2, num_segments=4)
        streaming = StreamingClusterExtractor.for_design(design, config=config)
        (extraction,) = streaming.extract(write_coupling_file(design))
        assert extraction.aggressor_nets == ["a1", "a2"]
        assert extraction.skipped_aggressors == ["d0"]

    def test_budget_still_caps_usable_aggressors(self, library):
        design = self.build(library)
        design.add_instance("u3", "INV_X2", {"A": "pi", "Z": "d0"})  # now driven
        config = ExtractionConfig(max_aggressors=2, num_segments=4)
        extraction = ClusterExtractor(design, config=config).extract_cluster("v")
        assert extraction.aggressor_nets == ["d0", "a1"]
        assert extraction.skipped_aggressors == ["a2"]


class TestStreamingBehaviour:
    def test_dnet_clusters_emit_before_end_of_stream(self, technology):
        """Bounded memory requires emission long before the file ends."""
        chip = SyntheticChip(num_nets=400, bus_width=4, topology="grid", seed=5)
        lines = list(chip.spef_lines(technology, style="dnet"))
        first_cluster_at = None
        consumed = 0

        def counting_lines():
            nonlocal consumed
            for line in lines:
                consumed += 1
                yield line

        extractor = StreamingClusterExtractor(chip, technology)
        for _ in extractor.extract(counting_lines()):
            if first_cluster_at is None:
                first_cluster_at = consumed
        assert first_cluster_at is not None
        # The first victim completes once its row+column neighborhood is
        # declared -- a handful of blocks into a 400-net file.
        assert first_cluster_at < len(lines) / 10

    def test_window_stays_bounded_on_dnet_input(self, technology):
        chip = SyntheticChip(num_nets=2000, bus_width=8, topology="grid", seed=5)
        extractor = StreamingClusterExtractor(chip, technology, max_open_nets=64)
        clusters = sum(1 for _ in extractor.extract(chip.spef_lines(technology)))
        assert clusters == extractor.stats.clusters > 0
        assert extractor.stats.peak_open_nets <= 3 * chip.bus_width
        assert extractor.stats.evictions > 0
        # Everything was evicted: no state survives the pass.
        assert extractor._states == {}

    def test_compact_input_trips_the_window_valve(self, technology):
        # Compact files have no block structure: nets only complete at EOF,
        # so a window bound must fail fast instead of growing silently.
        chip = SyntheticChip(num_nets=200, bus_width=8, topology="grid", seed=5)
        extractor = StreamingClusterExtractor(chip, technology, max_open_nets=64)
        with pytest.raises(StreamWindowExceeded, match="max_open_nets=64"):
            list(extractor.extract(chip.spef_lines(technology, style="compact")))

    def test_instances_are_single_use(self, technology):
        chip = SyntheticChip(num_nets=20, bus_width=4, seed=1)
        extractor = StreamingClusterExtractor(chip, technology)
        list(extractor.extract(chip.spef_lines(technology)))
        with pytest.raises(RuntimeError, match="single-use"):
            list(extractor.extract(chip.spef_lines(technology)))

    def two_net_design(self, library):
        design = Design("pair", library)
        design.add_primary_input("pi")
        for i, net in enumerate(["m0", "m1"]):
            design.add_net(net, length_um=100.0)
            design.add_instance(f"u{i}", "INV_X1", {"A": "pi", "Z": net})
            design.add_instance(f"r{i}", "INV_X1", {"A": net, "Z": f"o{i}"})
        return design

    def test_asymmetric_dnet_file_is_rejected(self, library):
        # m0's block closed without the m1 coupling, then a later block
        # couples back to it: the mirror-listing contract is broken and
        # eviction would be unsound.  (m0 has no receiver so it finishes at
        # *END but stays windowed for its still-open m2 neighbor -- the
        # violation is detectable.)
        design = self.two_net_design(library)
        design.add_net("m2", length_um=100.0)
        design.add_instance("u2", "INV_X1", {"A": "pi", "Z": "m2"})
        design.add_instance("r2", "INV_X1", {"A": "m2", "Z": "o2"})
        design.instances.pop("r0")
        text = (
            "*D_NET m0 1.0\n*CAP\n1 m0:1 m2:1 2.0\n*END\n"
            "*D_NET m1 1.0\n*CAP\n1 m1:1 m0:1 5.0\n*END\n"
        )
        extractor = StreamingClusterExtractor.for_design(design)
        with pytest.raises(SPEFError, match="after its \\*D_NET block closed"):
            list(extractor.extract(text))

    def test_conflicting_mirror_cap_is_rejected(self, library):
        text = (
            "*D_NET m0 1.0\n*CAP\n1 m0:1 m1:1 2.0\n*END\n"
            "*D_NET m1 1.0\n*CAP\n1 m1:1 m0:1 3.0\n*END\n"
        )
        extractor = StreamingClusterExtractor.for_design(self.two_net_design(library))
        with pytest.raises(SPEFError, match="duplicate coupling"):
            list(extractor.extract(text))

    def test_duplicate_declaration_is_rejected(self, library):
        extractor = StreamingClusterExtractor.for_design(self.two_net_design(library))
        with pytest.raises(SPEFError, match="declared more than once"):
            list(extractor.extract("*NET m0 *LENGTH 10\n*NET m0 *LENGTH 20\n"))


class TestUnusableVictims:
    def build(self, library):
        # v couples only to the driverless net d: no usable aggressors.
        design = Design("unusable", library)
        design.add_primary_input("pi")
        design.add_net("v", length_um=200.0)
        design.add_net("d", length_um=200.0)
        design.add_instance("u0", "INV_X1", {"A": "pi", "Z": "v"})
        design.add_instance("r0", "INV_X1", {"A": "v", "Z": "out"})
        design.add_coupling("v", "d", 100.0)
        return design

    def test_both_extractors_raise_by_default(self, library):
        design = self.build(library)
        with pytest.raises(ValueError, match="no usable aggressors"):
            ClusterExtractor(design).extract_clusters()
        extractor = StreamingClusterExtractor.for_design(design)
        with pytest.raises(ValueError, match="no usable aggressors"):
            list(extractor.extract(write_coupling_file(design)))

    def test_skip_unusable_streams_past(self, library):
        design = self.build(library)
        extractor = StreamingClusterExtractor.for_design(design, skip_unusable=True)
        clusters = list(extractor.extract(write_coupling_file(design)))
        assert clusters == []
        assert extractor.stats.skipped_nets >= 1


class TestDesignRoles:
    def test_unknown_net_raises_key_error(self, library):
        design = random_design(library, 2, num_nets=4)
        roles = DesignRoles(design)
        with pytest.raises(KeyError, match="ghost"):
            roles.role("ghost")

    def test_role_reports_connectivity(self, library):
        design = random_design(library, 2, num_nets=4)
        roles = DesignRoles(design)
        role = roles.role("pi")
        assert role.is_primary_input and role.driver_cell is None
        for net, info in design.nets.items():
            role = roles.role(net)
            assert role.length_um == info.length_um
            assert role.layer_index == info.layer_index


SESSION_CONFIG = dict(methods=("macromodel",), dt=4e-12, check_nrc=False)


class TestSessionStreaming:
    def test_stream_report_matches_design_report(self, library, technology):
        chip = SyntheticChip(num_nets=8, bus_width=4, topology="bus", seed=9)
        design = chip.build_design(library)
        config = ExtractionConfig(num_segments=3, max_aggressors=2)
        session = NoiseAnalysisSession(library, AnalysisConfig(vccs_grid=5))
        from_design = session.run_design(
            design,
            extractor=ClusterExtractor(design, config=config),
            **SESSION_CONFIG,
        )
        streaming = StreamingClusterExtractor(chip, technology, config=config)
        from_stream = session.run_design(
            stream=streaming.extract(chip.spef_lines(technology)),
            design_name="synthetic_chip",
            chunk_size=3,
            max_workers=2,
            **SESSION_CONFIG,
        )
        assert from_stream.design_name == "synthetic_chip"
        assert sorted(r.victim_net for r in from_stream.clusters) == sorted(
            r.victim_net for r in from_design.clusters
        )
        by_net = {r.victim_net: r for r in from_design.clusters}
        for report in from_stream.clusters:
            assert report.primary.peak == pytest.approx(
                by_net[report.victim_net].primary.peak, rel=1e-9
            )

    def test_exactly_one_source_required(self, library):
        session = NoiseAnalysisSession(library, AnalysisConfig(vccs_grid=5))
        with pytest.raises(ValueError, match="exactly one of design= or stream="):
            session.run_design()
        design = random_design(library, 3, num_nets=4)
        with pytest.raises(ValueError, match="exactly one of design= or stream="):
            session.run_design(design, stream=iter([]))

    def test_stream_rejects_extraction_knobs(self, library):
        session = NoiseAnalysisSession(library, AnalysisConfig(vccs_grid=5))
        with pytest.raises(ValueError, match="extraction"):
            session.run_design(stream=iter([]), extraction=ExtractionConfig())

    def test_empty_stream_yields_empty_report(self, library):
        session = NoiseAnalysisSession(library, AnalysisConfig(vccs_grid=5))
        report = session.run_design(stream=iter([]), **SESSION_CONFIG)
        assert report.clusters == []
        assert report.design_name == "streamed_design"
