"""Tests for the full-design SNA flow: design DB, parasitics, extraction, report."""

import pytest

from repro.noise import InputGlitchSpec
from repro.sna import (
    Design,
    SPEFError,
    StaticNoiseAnalysisFlow,
    annotate_design,
    read_coupling_file,
    write_coupling_file,
)
from repro.technology import build_default_library
from repro.units import ps


@pytest.fixture(scope="module")
def library():
    return build_default_library("cmos130")


@pytest.fixture()
def design(library):
    d = Design("testchip", library)
    for pin in ("a", "b", "c", "en"):
        d.add_primary_input(pin)
    d.add_net("n1", length_um=350, layer_index=4)
    d.add_net("n2", length_um=350, layer_index=4)
    d.add_net("n3", length_um=250, layer_index=3)
    d.add_instance("u1", "NAND2_X1", {"A": "a", "B": "b", "Z": "n1"})
    d.add_instance("u2", "INV_X2", {"A": "c", "Z": "n2"})
    d.add_instance("u3", "NOR2_X1", {"A": "en", "B": "a", "Z": "n3"})
    d.add_instance("r1", "INV_X1", {"A": "n1", "Z": "o1"})
    d.add_instance("r2", "INV_X1", {"A": "n2", "Z": "o2"})
    d.add_instance("r3", "INV_X1", {"A": "n3", "Z": "o3"})
    d.add_coupling("n1", "n2", 300.0)
    d.add_coupling("n1", "n3", 120.0)
    return d


class TestDesign:
    def test_connectivity_queries(self, design, library):
        assert design.driver_of("n1").name == "u1"
        assert design.driver_of("a") is None
        receivers = design.receivers_of("n1")
        assert [(inst.name, pin) for inst, pin in receivers] == [("r1", "A")]
        aggressors = dict(design.aggressors_of("n1"))
        assert aggressors == {"n2": 300.0, "n3": 120.0}
        assert design.net_quiet_level("n1") is False
        assert "6 instances" in design.summary()

    def test_validation(self, design, library):
        with pytest.raises(ValueError):
            design.add_net("n1")
        with pytest.raises(ValueError):
            design.add_instance("u1", "INV_X1", {"A": "a", "Z": "x"})
        with pytest.raises(KeyError):
            design.add_instance("u9", "NOSUCH", {"A": "a", "Z": "x"})
        with pytest.raises(ValueError):
            design.add_instance("u9", "NAND2_X1", {"A": "a", "Z": "x"})  # pin B unconnected
        with pytest.raises(KeyError):
            design.add_coupling("n1", "ghost", 10.0)


class TestParasitics:
    def test_round_trip(self, design):
        text = write_coupling_file(design)
        data = read_coupling_file(text)
        assert data["nets"]["n1"]["length_um"] == pytest.approx(350.0)
        assert data["nets"]["n1"]["layer_index"] == 4
        assert len(data["couplings"]) == 2

    def test_annotation(self, library):
        d = Design("annotated", library)
        d.add_primary_input("a")
        d.add_instance("u1", "INV_X1", {"A": "a", "Z": "n1"})
        d.add_instance("u2", "INV_X1", {"A": "n1", "Z": "o1"})
        text = """// test parasitics
*NET n1 *LENGTH 420 *LAYER 5
*NET n9 *LENGTH 100 *LAYER 2
*COUPLING n1 n9 200
"""
        annotate_design(d, text, allow_new_nets=True)
        assert d.nets["n1"].length_um == pytest.approx(420.0)
        assert d.nets["n1"].layer_index == 5
        assert "n9" in d.nets
        assert d.aggressors_of("n1") == [("n9", 200.0)]

    def test_annotation_rejects_unknown_nets_by_default(self, library):
        d = Design("annotated", library)
        d.add_primary_input("a")
        d.add_instance("u1", "INV_X1", {"A": "a", "Z": "n1"})
        text = "*NET n1 *LENGTH 420 *LAYER 5\n*NET n9 *LENGTH 100 *LAYER 2\n"
        with pytest.raises(SPEFError, match="n9") as excinfo:
            annotate_design(d, text)
        assert "allow_new_nets" in str(excinfo.value)
        # Nothing was applied: the design is untouched on failure.
        assert d.nets["n1"].length_um == pytest.approx(100.0)
        assert "n9" not in d.nets

    def test_errors(self):
        with pytest.raises(SPEFError):
            read_coupling_file("*NET n1 *BOGUS 3")
        with pytest.raises(SPEFError):
            read_coupling_file("*WHAT n1")
        with pytest.raises(SPEFError):
            read_coupling_file("*COUPLING n1 n2 not_a_number")
        assert read_coupling_file("// only a comment\n") == {"nets": {}, "couplings": []}


class TestFlow:
    def test_victim_candidates_and_extraction(self, design):
        flow = StaticNoiseAnalysisFlow(design, num_segments=4)
        candidates = flow.victim_candidates()
        assert candidates == ["n1", "n2", "n3"]
        extraction = flow.extract_cluster("n1")
        assert extraction.victim_net == "n1"
        assert set(extraction.aggressor_nets) == {"n2", "n3"}
        assert extraction.spec.victim.driver_cell == "NAND2_X1"
        assert extraction.spec.victim.receiver_cell == "INV_X1"
        # The strongest aggressor couples adjacently to the victim.
        wires = [w.name for w in extraction.spec.geometry.wires]
        victim_index = wires.index("n1")
        assert "n2" in (wires[victim_index - 1], wires[(victim_index + 1) % len(wires)])

    def test_extraction_errors(self, design):
        flow = StaticNoiseAnalysisFlow(design)
        with pytest.raises(ValueError):
            flow.extract_cluster("a")  # primary input has no driver

    def test_run_removed_with_migration_path(self, design):
        from repro.api import RemovedAPIError

        flow = StaticNoiseAnalysisFlow(design, num_segments=4)
        with pytest.raises(RemovedAPIError, match="run_design"):
            flow.run(method="macromodel", check_nrc=False, dt=ps(2))

    def test_run_design_replacement_produces_report(self, design):
        flow = StaticNoiseAnalysisFlow(
            design,
            num_segments=4,
            input_glitches={"n1": InputGlitchSpec(height=0.8, width=ps(200), start_time=ps(120))},
        )
        report = flow.session.run_design(
            design,
            extractor=flow.extractor,
            methods=("macromodel",),
            dt=ps(2),
            check_nrc=False,
        )
        assert len(report.clusters) == 3
        assert report.total_runtime_seconds > 0.0
        text = report.text()
        assert "n1" in text and "violations" in text
        n1 = report.cluster("n1").primary
        n2 = report.cluster("n2").primary
        # The weakly-driven NAND2 net with a glitch sees more noise than the
        # strongly-driven INV_X2 net.
        assert n1.peak > n2.peak
        assert not report.cluster("n1").fails  # NRC not checked

    def test_max_aggressor_filtering(self, design):
        flow = StaticNoiseAnalysisFlow(design, max_aggressors=1, num_segments=4)
        extraction = flow.extract_cluster("n1")
        assert len(extraction.aggressor_nets) == 1
        assert extraction.skipped_aggressors == ["n3"]


class TestExperimentConfigurations:
    def test_table_and_figure_specs(self):
        from repro.experiments import figure1_cluster, table1_cluster, table2_cluster

        t1 = table1_cluster()
        assert t1.num_aggressors == 1
        assert t1.victim.input_glitch is not None
        t2 = table2_cluster()
        assert t2.num_aggressors == 2
        assert {a.net for a in t2.aggressors} == {"aggr1", "aggr2"}
        assert t2.aggressors[0].switch_time == t2.aggressors[1].switch_time
        f1 = figure1_cluster()
        assert f1.victim.input_glitch is None
        assert f1.num_aggressors == 2

    def test_accuracy_sweep_covers_both_technologies(self):
        from repro.experiments import accuracy_sweep_clusters

        cases = accuracy_sweep_clusters(quick=True)
        technologies = {case.technology for case in cases}
        assert technologies == {"cmos130", "cmos90"}
        full = accuracy_sweep_clusters()
        assert len(full) > len(cases)
        labels = {case.label for case in full}
        assert len(labels) == len(full)

    def test_default_library_helper(self):
        from repro.experiments import default_library

        assert default_library("cmos90").technology.name == "cmos90"
