"""The incremental SPEF-subset parser: grammar, events, line-numbered errors."""

import io

import pytest

from repro.sna import (
    CouplingDeclaration,
    NetClosed,
    NetDeclaration,
    SPEFError,
    annotate_design,
    parse_spef,
    read_coupling_file,
)
from repro.sna.design import Design
from repro.sna.spef import resolve_coupled_length, resolve_net_geometry
from repro.technology import build_default_library, get_technology


@pytest.fixture(scope="module")
def technology():
    return get_technology("cmos130")


@pytest.fixture(scope="module")
def library():
    return build_default_library("cmos130")


DNET_DOC = """\
*SPEF "IEEE 1481-1998 subset"
*DESIGN "two_nets"
*DELIMITER :
*C_UNIT 1 FF
// a two-net detail document
*D_NET net_a 12.0 *LAYER 4
*CONN
*I inst:A I
*CAP
1 net_a:1 4.0
2 net_a:2 net_b:2 3.0
3 net_a:3 net_b:3 5.0
*RES
1 net_a:1 net_a:2 2.5
*END
*D_NET net_b 8.0 *LAYER 3
*CAP
1 net_b:1 2.0
2 net_b:2 net_a:2 8.0
*END
"""


class TestParseEvents:
    def test_dnet_block_event_sequence(self):
        events = list(parse_spef(DNET_DOC))
        assert [type(e).__name__ for e in events] == [
            "NetDeclaration",
            "CouplingDeclaration",
            "NetClosed",
            "NetDeclaration",
            "CouplingDeclaration",
            "NetClosed",
        ]
        declaration = events[0]
        assert declaration.name == "net_a"
        assert declaration.layer_index == 4
        assert declaration.total_cap_f == pytest.approx(12.0e-15)
        assert declaration.ground_cap_f == pytest.approx(4.0e-15)
        # The two net_a--net_b segments are summed into one declaration.
        coupling = events[1]
        assert (coupling.net_a, coupling.net_b) == ("net_a", "net_b")
        assert coupling.cap_f == pytest.approx(8.0e-15)
        assert coupling.coupled_length_um is None
        assert isinstance(events[2], NetClosed) and events[2].name == "net_a"

    def test_accepts_file_handles_and_line_iterables(self):
        from_text = list(parse_spef(DNET_DOC))
        from_handle = list(parse_spef(io.StringIO(DNET_DOC)))
        from_lines = list(parse_spef(iter(DNET_DOC.splitlines())))
        assert from_text == from_handle == from_lines

    def test_compact_events(self):
        events = list(
            parse_spef("*NET n1 *LENGTH 350 *LAYER 4\n*COUPLING n1 n2 120.5\n")
        )
        assert events == [
            NetDeclaration(name="n1", line_number=1, length_um=350.0, layer_index=4),
            CouplingDeclaration(
                net_a="n1", net_b="n2", line_number=2, coupled_length_um=120.5
            ),
        ]

    def test_name_map_resolution(self):
        text = (
            "*NAME_MAP\n*1 alpha\n*2 beta\n"
            "*D_NET *1 5.0\n*CAP\n1 *1:1 2.0\n2 *1:2 *2:2 3.0\n*END\n"
        )
        events = list(parse_spef(text))
        assert events[0].name == "alpha"
        assert (events[1].net_a, events[1].net_b) == ("alpha", "beta")

    def test_c_unit_scaling(self):
        text = "*C_UNIT 1 PF\n*D_NET n1 2.0\n*CAP\n1 n1:1 2.0\n*END\n"
        (declaration, closed) = parse_spef(text)
        assert declaration.total_cap_f == pytest.approx(2.0e-12)
        assert declaration.ground_cap_f == pytest.approx(2.0e-12)

    def test_custom_delimiter(self):
        text = "*DELIMITER /\n*D_NET n1 1.0\n*CAP\n1 n1/1 1.0\n*END\n"
        (declaration, closed) = parse_spef(text)
        assert declaration.ground_cap_f == pytest.approx(1.0e-15)

    def test_comments_and_blank_lines_are_skipped(self):
        assert list(parse_spef("// nothing\n\n  \n")) == []


def error_of(text):
    with pytest.raises(SPEFError) as excinfo:
        list(parse_spef(text))
    return excinfo.value


class TestParseErrors:
    def test_unknown_keyword_carries_line_number(self):
        error = error_of("// ok\n*WHAT n1\n")
        assert error.line_number == 2
        assert "unknown keyword '*WHAT'" in str(error)

    def test_malformed_numbers(self):
        error = error_of("*COUPLING n1 n2 not_a_number")
        assert error.line_number == 1 and "malformed entry" in str(error)
        error = error_of("*NET n1 *LENGTH abc")
        assert "malformed entry" in str(error)

    def test_coupling_trailing_garbage(self):
        error = error_of("*COUPLING n1 n2 120 junk")
        assert error.line_number == 1
        assert "exactly two nets and a length" in str(error)

    def test_compact_self_coupling(self):
        error = error_of("*COUPLING n1 n1 120")
        assert "cannot couple to itself" in str(error)

    def test_cap_self_coupling(self):
        error = error_of("*D_NET n1 1.0\n*CAP\n1 n1:1 n1:2 0.5\n*END\n")
        assert error.line_number == 3
        assert "cannot couple to itself" in str(error)

    def test_ground_cap_node_must_belong_to_owner(self):
        error = error_of("*D_NET n1 1.0\n*CAP\n1 n2:1 0.5\n*END\n")
        assert error.line_number == 3
        assert "does not belong to net 'n1'" in str(error)

    def test_coupling_cap_must_touch_owner(self):
        error = error_of("*D_NET n1 1.0\n*CAP\n1 n2:1 n3:1 0.5\n*END\n")
        assert "does not touch net 'n1'" in str(error)

    def test_unclosed_dnet_block(self):
        error = error_of("*D_NET n1 1.0\n*CAP\n1 n1:1 0.5\n")
        assert error.line_number == 1
        assert "never closed by *END" in str(error)

    def test_end_outside_block(self):
        error = error_of("*END\n")
        assert "unknown keyword '*END'" in str(error)

    def test_duplicate_name_map_index(self):
        error = error_of("*NAME_MAP\n*1 alpha\n*1 beta\n")
        assert error.line_number == 3
        assert "duplicate *NAME_MAP index" in str(error)

    def test_unknown_name_map_index(self):
        error = error_of("*NAME_MAP\n*1 alpha\n*NET *7 *LENGTH 10\n")
        assert "name index *7 is not in the *NAME_MAP" in str(error)

    def test_unknown_capacitance_unit(self):
        error = error_of("*C_UNIT 1 PARSECS\n")
        assert "unknown capacitance unit" in str(error)

    def test_nonpositive_lengths(self):
        assert "must be positive" in str(error_of("*NET n1 *LENGTH -10"))
        assert "must be positive" in str(error_of("*COUPLING n1 n2 0"))

    def test_negative_capacitances(self):
        assert "non-negative" in str(error_of("*D_NET n1 -1.0\n*END\n"))
        assert "non-negative" in str(
            error_of("*D_NET n1 1.0\n*CAP\n1 n1:1 -0.5\n*END\n")
        )
        assert "must be positive" in str(
            error_of("*D_NET n1 1.0\n*CAP\n1 n1:1 n2:1 0\n*END\n")
        )

    def test_element_line_outside_section(self):
        error = error_of("*D_NET n1 1.0\n1 n1:1 0.5\n*END\n")
        assert "outside a *CAP/*RES section" in str(error)

    def test_malformed_dnet_header_and_cap_entries(self):
        assert "malformed *D_NET header" in str(error_of("*D_NET n1\n"))
        assert "malformed *CAP entry" in str(
            error_of("*D_NET n1 1.0\n*CAP\n1 n1:1 n2:1 n3:1 0.5\n*END\n")
        )
        assert "must start with an index" in str(
            error_of("*D_NET n1 1.0\n*CAP\nx n1:1 0.5\n*END\n")
        )


class TestReadCouplingFile:
    def test_duplicate_net_declaration(self):
        with pytest.raises(SPEFError, match="line 2.*declared more than once"):
            read_coupling_file("*NET n1 *LENGTH 10\n*NET n1 *LENGTH 20\n")

    def test_duplicate_compact_coupling(self):
        text = "*COUPLING n1 n2 10\n*COUPLING n2 n1 10\n"
        with pytest.raises(SPEFError, match="line 2.*duplicate coupling"):
            read_coupling_file(text)

    def test_dnet_mirror_listing_is_merged(self, technology):
        data = read_coupling_file(DNET_DOC, technology=technology)
        assert len(data["couplings"]) == 1
        coupling = data["couplings"][0]
        assert (coupling["net_a"], coupling["net_b"]) == ("net_a", "net_b")
        assert coupling["cap_f"] == pytest.approx(8.0e-15)

    def test_conflicting_mirror_cap_is_an_error(self):
        text = (
            "*D_NET a 1.0\n*CAP\n1 a:1 b:1 3.0\n*END\n"
            "*D_NET b 1.0\n*CAP\n1 b:1 a:1 4.0\n*END\n"
        )
        with pytest.raises(SPEFError, match="duplicate coupling"):
            read_coupling_file(text)

    def test_cap_to_length_conversion(self, technology):
        layer = technology.layer(4)
        ground_ff = 120.0 * layer.ground_cap_per_um / 1e-15
        coupled_ff = 80.0 * layer.coupling_cap_per_um / 1e-15
        text = (
            f"*D_NET a 9.9 *LAYER 4\n*CAP\n"
            f"1 a:1 {ground_ff!r}\n2 a:2 b:2 {coupled_ff!r}\n*END\n"
        )
        data = read_coupling_file(text, technology=technology)
        assert data["nets"]["a"]["length_um"] == pytest.approx(120.0)
        assert data["couplings"][0]["cap_f"] == pytest.approx(coupled_ff * 1e-15)

    def test_cap_only_without_technology_leaves_length_unresolved(self):
        data = read_coupling_file("*D_NET a 5.0\n*END\n")
        assert data["nets"]["a"]["length_um"] is None

    def test_unknown_layer_is_a_spef_error(self, technology):
        text = "*D_NET a 5.0 *LAYER 99\n*CAP\n1 a:1 5.0\n*END\n"
        with pytest.raises(SPEFError, match="no metal layer 99"):
            read_coupling_file(text, technology=technology)


class TestResolveHelpers:
    def test_declared_length_wins(self, technology):
        declaration = NetDeclaration(
            name="a", line_number=1, length_um=55.0, layer_index=5, total_cap_f=1e-12
        )
        assert resolve_net_geometry(declaration, technology) == (55.0, 5)

    def test_cap_without_technology_raises(self):
        declaration = NetDeclaration(name="a", line_number=3, total_cap_f=1e-12)
        with pytest.raises(SPEFError, match="line 3"):
            resolve_net_geometry(declaration)
        coupling = CouplingDeclaration(net_a="a", net_b="b", line_number=4, cap_f=1e-15)
        with pytest.raises(SPEFError, match="line 4"):
            resolve_coupled_length(coupling)

    def test_defaults_without_any_declaration(self):
        declaration = NetDeclaration(name="a", line_number=1)
        assert resolve_net_geometry(declaration) == (100.0, 3)


class TestAnnotateDesign:
    def make_design(self, library):
        design = Design("chip", library)
        design.add_primary_input("a")
        design.add_instance("u1", "INV_X1", {"A": "a", "Z": "n1"})
        design.add_instance("u2", "INV_X1", {"A": "n1", "Z": "o1"})
        design.add_net("n2")
        design.add_instance("u3", "INV_X1", {"A": "a", "Z": "n2"})
        return design

    def test_unknown_net_raises_by_default(self, library):
        design = self.make_design(library)
        with pytest.raises(SPEFError, match="ghost.*allow_new_nets"):
            annotate_design(design, "*NET ghost *LENGTH 10\n")
        with pytest.raises(SPEFError, match="ghost"):
            annotate_design(design, "*COUPLING n1 ghost 10\n")

    def test_allow_new_nets_restores_creation(self, library):
        design = self.make_design(library)
        annotate_design(
            design, "*NET ghost *LENGTH 10 *LAYER 2\n*COUPLING n1 ghost 5\n",
            allow_new_nets=True,
        )
        assert design.nets["ghost"].length_um == 10.0
        assert design.aggressors_of("n1") == [("ghost", 5.0)]

    def test_coupling_to_truly_unknown_net_still_fails(self, library):
        design = self.make_design(library)
        # allow_new_nets only covers nets the file *declares*.
        with pytest.raises(SPEFError, match="phantom"):
            annotate_design(design, "*COUPLING n1 phantom 5\n", allow_new_nets=True)

    def test_dnet_annotation_converts_through_library_technology(self, library):
        design = self.make_design(library)
        technology = library.technology
        layer = technology.layer(4)
        ground_ff = 75.0 * layer.ground_cap_per_um / 1e-15
        coupled_ff = 40.0 * layer.coupling_cap_per_um / 1e-15
        text = (
            f"*D_NET n1 9.9 *LAYER 4\n*CAP\n"
            f"1 n1:1 {ground_ff!r}\n2 n1:2 n2:2 {coupled_ff!r}\n*END\n"
            f"*D_NET n2 9.9 *LAYER 4\n*CAP\n"
            f"1 n2:2 n1:2 {coupled_ff!r}\n*END\n"
        )
        annotate_design(design, text)
        assert design.nets["n1"].length_um == pytest.approx(75.0)
        assert design.nets["n1"].layer_index == 4
        ((net, coupled),) = design.aggressors_of("n1")
        assert net == "n2" and coupled == pytest.approx(40.0)
