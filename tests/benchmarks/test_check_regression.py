"""The CI perf gate must fail on an injected slowdown and pass otherwise."""

import importlib.util
import json
import os

import pytest

_MODULE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


BASELINE = {"summary": {"linear_speedup_geomean": 8.0, "linear_speedup_min": 4.0}}


@pytest.fixture()
def baseline_path(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(BASELINE))
    return path


def write_current(tmp_path, geomean):
    path = tmp_path / "current.json"
    path.write_text(json.dumps({"summary": {"linear_speedup_geomean": geomean}}))
    return path


def run_gate(baseline_path, current_path, *extra):
    return check_regression.main(
        ["--baseline", str(baseline_path), "--current", str(current_path), *extra]
    )


class TestGateVerdicts:
    def test_injected_slowdown_fails(self, tmp_path, baseline_path, capsys):
        # A 2x slowdown (8.0 -> 4.0) is far beyond the 30% budget.
        current = write_current(tmp_path, 4.0)
        assert run_gate(baseline_path, current) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err and "regressed" in captured.err

    def test_boundary_cases(self, tmp_path, baseline_path):
        # Exactly at the floor passes; just below fails.
        assert run_gate(baseline_path, write_current(tmp_path, 8.0 * 0.70)) == 0
        assert run_gate(baseline_path, write_current(tmp_path, 8.0 * 0.699)) == 1

    def test_equal_and_faster_pass(self, tmp_path, baseline_path):
        assert run_gate(baseline_path, write_current(tmp_path, 8.0)) == 0
        assert run_gate(baseline_path, write_current(tmp_path, 16.0)) == 0

    def test_noise_within_budget_passes(self, tmp_path, baseline_path):
        assert run_gate(baseline_path, write_current(tmp_path, 8.0 * 0.85)) == 0

    def test_custom_metric_and_budget(self, tmp_path, baseline_path):
        current = write_current(tmp_path, 0.0)  # irrelevant metric value
        code = check_regression.main(
            [
                "--baseline", str(baseline_path),
                "--current", str(baseline_path),  # compare baseline to itself
                "--metric", "summary.linear_speedup_min",
                "--max-regression", "0.0",
            ]
        )
        assert code == 0
        assert current.exists()


class TestGateErrors:
    def test_missing_metric_is_a_config_error(self, tmp_path, baseline_path):
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"summary": {}}))
        assert run_gate(baseline_path, current) == 2

    def test_missing_key_message_lists_available_keys(self, tmp_path, baseline_path, capsys):
        # A summary without the gated key must produce a clear, single-line
        # error naming the missing key and what the record actually holds --
        # not a KeyError traceback.
        current = tmp_path / "current.json"
        current.write_text(
            json.dumps({"summary": {"other_metric": 1.0, "runtime_seconds": 2.0}})
        )
        assert run_gate(baseline_path, current) == 2
        err = capsys.readouterr().err
        assert "ERROR:" in err
        assert "linear_speedup_geomean" in err
        assert "other_metric" in err and "runtime_seconds" in err
        # MetricError str() must not carry KeyError's extra quoting.
        assert 'ERROR: "' not in err

    def test_metric_path_into_non_object(self, tmp_path, baseline_path, capsys):
        # Dotted path descends into a scalar: say so instead of KeyError.
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"summary": 3.0}))
        assert run_gate(baseline_path, current) == 2
        err = capsys.readouterr().err
        assert "not an object" in err

    def test_read_metric_raises_metric_error(self, tmp_path):
        path = tmp_path / "record.json"
        path.write_text(json.dumps({"summary": {"a": 1.0}}))
        with pytest.raises(check_regression.MetricError, match="available here: a"):
            check_regression.read_metric(str(path), "summary.missing")
        with pytest.raises(check_regression.MetricError, match="not a number"):
            check_regression.read_metric(str(path), "summary")

    def test_missing_file_is_a_config_error(self, tmp_path, baseline_path):
        assert run_gate(baseline_path, tmp_path / "nope.json") == 2

    def test_non_numeric_metric_is_a_config_error(self, tmp_path, baseline_path):
        current = tmp_path / "current.json"
        current.write_text(json.dumps({"summary": {"linear_speedup_geomean": "fast"}}))
        assert run_gate(baseline_path, current) == 2
